#include "obs/stream_audit.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/logging.h"
#include "common/random.h"

namespace esr {

StreamCertifier::StreamCertifier(StreamCertifierOptions options)
    : options_(std::move(options)),
      window_micros_(std::max<int64_t>(
          1, static_cast<int64_t>(options_.window_s * 1e6 + 0.5))),
      observed_through_(options_.epoch_micros),
      last_event_ts_(0),
      certified_from_(options_.epoch_micros),
      freeze_micros_(std::numeric_limits<int64_t>::max()) {}

void StreamCertifier::ObserveTrampoline(void* ctx, const TraceEvent& event) {
  static_cast<StreamCertifier*>(ctx)->Observe(event);
}

int64_t StreamCertifier::ClosedBoundary(int64_t ts) const {
  if (ts <= options_.epoch_micros) return options_.epoch_micros;
  const int64_t k = (ts - options_.epoch_micros) / window_micros_;
  return options_.epoch_micros + k * window_micros_;
}

double StreamCertifier::ToSeconds(int64_t ts) const {
  return static_cast<double>(ts - options_.epoch_micros) / 1e6;
}

void StreamCertifier::Observe(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  ++events_observed_;
  observed_through_ = std::max(observed_through_, event.ts_micros);
  last_event_ts_ = std::max(last_event_ts_, event.ts_micros);

  if (event.type == TraceEventType::kWait) {
    std::vector<TxnId>& writers = waits_[event.txn];
    if (writers.size() < 16) writers.push_back(event.parent);
  }
  if (event.type == TraceEventType::kCommit ||
      event.type == TraceEventType::kAbort) {
    // Resolve the violation interval's end for this transaction, exactly
    // as the offline auditor does from its transaction table.
    for (BoundViolation& v : *replayer_.mutable_violations()) {
      if (v.txn == event.txn) v.ts_end = event.ts_micros;
    }
    waits_.erase(event.txn);
  }

  const BoundWalkReplayer::Outcome outcome = replayer_.OnEvent(event);
  if (event.type == TraceEventType::kBoundCheck) {
    NodeState& node = nodes_[event.target];
    node.level = event.level;
    ++node.checks;
  }
  if (outcome.new_violation >= 0) {
    RecordViolation(event, static_cast<size_t>(outcome.new_violation));
  }
}

void StreamCertifier::RecordViolation(const TraceEvent& event, size_t index) {
  const BoundViolation& v = replayer_.violations()[index];
  // The watermark freezes at the left edge of the window the violation
  // landed in: that window (and everything after) is no longer certified.
  const int64_t freeze = ClosedBoundary(v.ts_begin);
  freeze_micros_ = std::min(freeze_micros_, freeze);
  NodeState& node = nodes_[v.group];
  node.level = v.level;
  node.violated = true;
  node.freeze_micros = std::min(node.freeze_micros, freeze);

  // Blame the conflict chain observed so far: the writers this
  // transaction had been made to wait on are the peers whose uncommitted
  // state it imported against.
  const auto wit = waits_.find(v.txn);
  std::vector<TxnId> blamed =
      wit != waits_.end() ? wit->second : std::vector<TxnId>{};
  while (blamed_writers_.size() < index) blamed_writers_.emplace_back();
  blamed_writers_.push_back(blamed);

  if (options_.log_violations) {
    std::ostringstream chain;
    for (size_t i = 0; i < blamed.size(); ++i) {
      chain << (i == 0 ? "" : ",") << blamed[i];
    }
    ESR_LOG(kError) << "[stream-certify"
                    << (options_.source.empty() ? "" : " ") << options_.source
                    << "] VIOLATION txn " << v.txn << " "
                    << ChargeDirectionToString(v.direction) << " group "
                    << v.group << " (level " << v.level << "): accumulated "
                    << v.accumulated << " > limit " << v.limit
                    << " in window [" << ToSeconds(freeze) << "s, "
                    << ToSeconds(freeze + window_micros_)
                    << "s); blamed writers: ["
                    << (blamed.empty() ? "none captured" : chain.str())
                    << "]";
  }
  if (options_.emit_trace_events && GlobalTraceEnabled()) {
    // Safe from inside the recorder's observer callback: the recorder
    // stores the marker but does not re-deliver it to us.
    GlobalTrace().Record(TraceEvent::Violation(
        v.txn, event.site, v.level, v.group, v.accumulated, v.limit,
        static_cast<int>(v.direction)));
  }
}

void StreamCertifier::AdvanceTo(int64_t ts_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  observed_through_ = std::max(observed_through_, ts_micros);
}

void StreamCertifier::NoteLostPrefix(uint64_t lost_events,
                                     int64_t first_retained_ts) {
  std::lock_guard<std::mutex> lock(mu_);
  if (lost_events == 0) return;
  lost_prefix_events_ += lost_events;
  // The window containing the first retained event was only partially
  // observed; vouch from the next boundary on (or this one, if the first
  // event sits exactly on it).
  int64_t from = options_.epoch_micros;
  if (first_retained_ts > options_.epoch_micros) {
    const int64_t offset = first_retained_ts - options_.epoch_micros;
    from = options_.epoch_micros +
           ((offset + window_micros_ - 1) / window_micros_) * window_micros_;
  }
  certified_from_ = std::max(certified_from_, from);
}

double StreamCertifier::certified_through_s() const {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t certified = std::max(
      certified_from_,
      std::min(ClosedBoundary(observed_through_), freeze_micros_));
  return ToSeconds(certified);
}

double StreamCertifier::lag_windows() const {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t certified = std::max(
      certified_from_,
      std::min(ClosedBoundary(observed_through_), freeze_micros_));
  const int64_t lag = std::max<int64_t>(0, observed_through_ - certified);
  return static_cast<double>(lag) / static_cast<double>(window_micros_);
}

size_t StreamCertifier::violation_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return replayer_.violations().size();
}

bool StreamCertifier::certified() const { return violation_count() == 0; }

StreamCertification StreamCertifier::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  StreamCertification snap;
  snap.enabled = true;
  snap.window_s = static_cast<double>(window_micros_) / 1e6;
  snap.events_observed = events_observed_;
  snap.walks_replayed = replayer_.walks_replayed();
  snap.charges_applied = replayer_.charges_applied();
  const int64_t closed = ClosedBoundary(observed_through_);
  snap.windows_closed = static_cast<size_t>(
      (closed - options_.epoch_micros) / window_micros_);
  const int64_t certified =
      std::max(certified_from_, std::min(closed, freeze_micros_));
  snap.observed_through_s = ToSeconds(observed_through_);
  snap.certified_through_s = ToSeconds(certified);
  snap.certified_from_s = ToSeconds(certified_from_);
  snap.lag_windows =
      static_cast<double>(std::max<int64_t>(0, observed_through_ - certified)) /
      static_cast<double>(window_micros_);
  snap.lost_prefix_events = lost_prefix_events_;

  snap.violations = replayer_.violations();
  for (BoundViolation& v : snap.violations) {
    // Transaction end not captured: close the interval at the last event,
    // mirroring AuditTrace.
    if (v.ts_end == 0) v.ts_end = last_event_ts_;
  }
  snap.blamed_writers = blamed_writers_;
  snap.blamed_writers.resize(snap.violations.size());

  snap.nodes.reserve(nodes_.size());
  for (const auto& [group, state] : nodes_) {
    NodeCertification node;
    node.group = group;
    node.level = state.level;
    node.checks = state.checks;
    node.violated = state.violated;
    node.certified_through_s = ToSeconds(
        std::max(certified_from_, std::min(closed, state.freeze_micros)));
    snap.nodes.push_back(node);
  }
  return snap;
}

// -- Schedule perturbation ------------------------------------------------

std::vector<TraceEvent> PerturbSchedule(const std::vector<TraceEvent>& events,
                                        const PerturbOptions& options) {
  // Per-site lanes preserve each client's program order; map keeps lane
  // iteration (and hence the merge) deterministic in the site ids.
  std::map<SiteId, std::vector<size_t>> by_site;
  for (size_t i = 0; i < events.size(); ++i) {
    by_site[events[i].site].push_back(i);
  }
  std::vector<std::vector<size_t>> lanes;
  lanes.reserve(by_site.size());
  for (auto& [site, indices] : by_site) lanes.push_back(std::move(indices));
  std::vector<size_t> cursor(lanes.size(), 0);

  Rng rng(options.seed != 0 ? options.seed : 1);
  std::vector<TraceEvent> out;
  out.reserve(events.size());
  std::vector<size_t> eligible;
  int64_t prev_ts = std::numeric_limits<int64_t>::min();
  for (size_t remaining = events.size(); remaining > 0; --remaining) {
    int64_t min_head = std::numeric_limits<int64_t>::max();
    for (size_t l = 0; l < lanes.size(); ++l) {
      if (cursor[l] < lanes[l].size()) {
        min_head =
            std::min(min_head, events[lanes[l][cursor[l]]].ts_micros);
      }
    }
    eligible.clear();
    for (size_t l = 0; l < lanes.size(); ++l) {
      if (cursor[l] < lanes[l].size() &&
          events[lanes[l][cursor[l]]].ts_micros <=
              min_head + options.horizon_micros) {
        eligible.push_back(l);
      }
    }
    const size_t lane = eligible[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(eligible.size()) - 1))];
    TraceEvent e = events[lanes[lane][cursor[lane]++]];
    int64_t ts = e.ts_micros;
    if (options.jitter_micros > 0) {
      ts += rng.UniformInt(0, options.jitter_micros);
    }
    ts = std::max(ts, prev_ts);
    prev_ts = ts;
    e.ts_micros = ts;
    out.push_back(e);
  }
  return out;
}

namespace {

StreamCertification CertifySchedule(const std::vector<TraceEvent>& schedule,
                                    double window_s) {
  StreamCertifierOptions options;
  options.window_s = window_s;
  options.log_violations = false;
  StreamCertifier certifier(options);
  for (const TraceEvent& e : schedule) certifier.Observe(e);
  return certifier.Snapshot();
}

}  // namespace

std::vector<TraceEvent> MinimizeViolatingSchedule(
    const std::vector<TraceEvent>& schedule, double window_s) {
  // Find the event at which the first violation fires.
  StreamCertifierOptions options;
  options.window_s = window_s;
  options.log_violations = false;
  StreamCertifier probe(options);
  size_t cut = schedule.size();
  for (size_t i = 0; i < schedule.size(); ++i) {
    probe.Observe(schedule[i]);
    if (probe.violation_count() > 0) {
      cut = i;
      break;
    }
  }
  if (cut == schedule.size()) return {};
  const BoundViolation v = probe.Snapshot().violations.front();

  // The replay is per (transaction, direction), so the violating
  // transaction's own bound checks in that direction — truncated at the
  // crossing walk — are a complete reproduction on their own.
  const int dir = static_cast<int>(v.direction);
  std::vector<TraceEvent> minimal;
  for (size_t i = 0; i <= cut; ++i) {
    const TraceEvent& e = schedule[i];
    if (e.txn != v.txn) continue;
    if (e.type == TraceEventType::kBegin ||
        (e.type == TraceEventType::kBoundCheck &&
         ((e.detail >> 1) & 1) == dir)) {
      minimal.push_back(e);
    }
  }
  if (CertifySchedule(minimal, window_s).certified()) {
    // Defensive fallback: never return a non-reproducing shrink.
    return std::vector<TraceEvent>(schedule.begin(),
                                   schedule.begin() + cut + 1);
  }
  return minimal;
}

PerturbReport HuntPerturbations(const std::vector<TraceEvent>& events,
                                size_t n, uint64_t base_seed,
                                double window_s) {
  PerturbReport report;
  report.schedules = n;
  for (size_t k = 0; k < n; ++k) {
    PerturbOptions options;
    options.seed = base_seed + k;
    const std::vector<TraceEvent> schedule =
        PerturbSchedule(events, options);
    const StreamCertification snap = CertifySchedule(schedule, window_s);
    PerturbVerdict verdict;
    verdict.seed = options.seed;
    verdict.violations = snap.violations.size();
    verdict.certified_through_s = snap.certified_through_s;
    report.verdicts.push_back(verdict);
    if (snap.violations.empty()) continue;
    ++report.violating;
    if (report.first_violations.empty()) {
      report.first_violating_seed = options.seed;
      report.first_violations = snap.violations;
      report.minimal_schedule = MinimizeViolatingSchedule(schedule, window_s);
    }
  }
  return report;
}

}  // namespace esr
