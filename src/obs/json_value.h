#ifndef ESR_OBS_JSON_VALUE_H_
#define ESR_OBS_JSON_VALUE_H_

// Minimal recursive-descent JSON parser, promoted from the test tree so
// runtime tools (the trace auditor, the bench regression checker) can
// read the JSON the exporters write. Strict enough to catch malformed
// output (unbalanced braces, missing commas, bad escapes, bare NaN)
// while staying dependency-free. Numbers are doubles; \uXXXX escapes are
// validated but decoded as '?' (consumers only read ASCII content).

#include <map>
#include <string>
#include <vector>

namespace esr {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Member's number, or `fallback` when absent / not a number.
  double NumberOr(const std::string& key, double fallback) const;
};

/// Parses `text`; on failure returns false and (optionally) the error.
bool ParseJson(const std::string& text, JsonValue* out,
               std::string* error = nullptr);

}  // namespace esr

#endif  // ESR_OBS_JSON_VALUE_H_
