#include "obs/health.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "obs/exporter.h"
#include "obs/json_value.h"

namespace esr {
namespace {

// Deterministic number formatting for alert messages (journals are
// compared byte-for-byte across --jobs levels).
std::string FormatNum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string FormatCount(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

double WindowEnd(const SeriesWindow& w) { return w.start_s + w.duration_s; }

// -- AbortLivelockDetector --------------------------------------------------

class AbortLivelockDetector : public HealthDetector {
 public:
  explicit AbortLivelockDetector(const AbortLivelockOptions& options)
      : options_(options) {}

  const char* name() const override { return "abort_livelock"; }

  void OnWindow(size_t index, const SeriesWindow& w, const HealthInput&,
                AlertSink* sink) override {
    const bool starved = w.committed <= options_.max_committed;
    const bool churning = w.aborted >= options_.min_aborted ||
                          w.restarts >= options_.min_aborted;
    if (starved && churning) {
      if (streak_ == 0) {
        streak_start_ = index;
        streak_start_s_ = w.start_s;
        streak_aborted_ = 0;
        streak_committed_ = 0;
      }
      ++streak_;
      streak_aborted_ += w.aborted;
      streak_committed_ += w.committed;
      if (streak_ == options_.min_windows) {
        Alert alert;
        alert.detector = name();
        alert.severity = AlertSeverity::kError;
        alert.first_window = streak_start_;
        alert.last_window = index;
        alert.start_s = streak_start_s_;
        alert.end_s = WindowEnd(w);
        alert.message = "sustained abort livelock: >= " +
                        FormatCount(static_cast<int64_t>(options_.min_windows)) +
                        " consecutive windows with <= " +
                        FormatCount(options_.max_committed) +
                        " commits while aborting";
        alert.evidence.emplace_back("windows", static_cast<double>(streak_));
        alert.evidence.emplace_back("aborted",
                                    static_cast<double>(streak_aborted_));
        alert.evidence.emplace_back("committed",
                                    static_cast<double>(streak_committed_));
        handle_ = sink->OpenAlert(std::move(alert));
        open_ = true;
      } else if (open_) {
        sink->ExtendAlert(handle_, index, WindowEnd(w));
      }
    } else {
      if (open_) {
        sink->CloseAlert(handle_);
        open_ = false;
      }
      streak_ = 0;
    }
  }

 private:
  AbortLivelockOptions options_;
  size_t streak_ = 0;
  size_t streak_start_ = 0;
  double streak_start_s_ = 0.0;
  int64_t streak_aborted_ = 0;
  int64_t streak_committed_ = 0;
  size_t handle_ = 0;
  bool open_ = false;
};

// -- ThrashingBistabilityDetector -------------------------------------------

class ThrashingBistabilityDetector : public HealthDetector {
 public:
  explicit ThrashingBistabilityDetector(
      const ThrashingBistabilityOptions& options)
      : options_(options) {}

  const char* name() const override { return "thrashing_bistability"; }

  void OnWindow(size_t index, const SeriesWindow& w, const HealthInput&,
                AlertSink* sink) override {
    committed_.push_back(static_cast<double>(w.committed));
    mpl_.push_back(w.active_mpl);
    if (committed_.size() > options_.lookback) {
      committed_.pop_front();
      mpl_.pop_front();
    }
    if (committed_.size() < options_.lookback || options_.lookback < 4) {
      return;
    }

    const size_t n = committed_.size();
    double mean = 0.0;
    double mean_mpl = 0.0;
    for (size_t i = 0; i < n; ++i) {
      mean += committed_[i];
      mean_mpl += mpl_[i];
    }
    mean /= static_cast<double>(n);
    mean_mpl /= static_cast<double>(n);

    bool bimodal = false;
    double cv = 0.0;
    double mean_low = 0.0;
    double mean_high = 0.0;
    if (mean_mpl >= options_.min_mpl && mean > 0.0) {
      double var = 0.0;
      size_t low_n = 0;
      size_t high_n = 0;
      for (size_t i = 0; i < n; ++i) {
        const double d = committed_[i] - mean;
        var += d * d;
        if (committed_[i] < mean) {
          mean_low += committed_[i];
          ++low_n;
        } else {
          mean_high += committed_[i];
          ++high_n;
        }
      }
      var /= static_cast<double>(n);
      cv = std::sqrt(var) / mean;
      const size_t min_cluster = static_cast<size_t>(
          options_.min_cluster_frac * static_cast<double>(n));
      if (low_n >= min_cluster && high_n >= min_cluster && low_n > 0 &&
          high_n > 0) {
        mean_low /= static_cast<double>(low_n);
        mean_high /= static_cast<double>(high_n);
        bimodal = cv >= options_.min_cv &&
                  (mean_high - mean_low) >= options_.min_separation_frac * mean;
      }
    }

    if (bimodal) {
      if (!open_) {
        Alert alert;
        alert.detector = name();
        alert.severity = AlertSeverity::kWarn;
        alert.first_window = index + 1 - n;
        alert.last_window = index;
        alert.start_s = w.start_s - w.duration_s * static_cast<double>(n - 1);
        alert.end_s = WindowEnd(w);
        alert.message =
            "bistable throughput at high MPL: committed/window splits into ~" +
            FormatNum(mean_high) + " and ~" + FormatNum(mean_low) +
            " regimes (cv " + FormatNum(cv) + ", mean MPL " +
            FormatNum(mean_mpl) + ")";
        alert.evidence.emplace_back("cv", cv);
        alert.evidence.emplace_back("mean_high", mean_high);
        alert.evidence.emplace_back("mean_low", mean_low);
        alert.evidence.emplace_back("mean_mpl", mean_mpl);
        alert.evidence.emplace_back("lookback", static_cast<double>(n));
        handle_ = sink->OpenAlert(std::move(alert));
        open_ = true;
      } else {
        sink->ExtendAlert(handle_, index, WindowEnd(w));
      }
    } else if (open_) {
      sink->CloseAlert(handle_);
      open_ = false;
    }
  }

 private:
  ThrashingBistabilityOptions options_;
  std::deque<double> committed_;
  std::deque<double> mpl_;
  size_t handle_ = 0;
  bool open_ = false;
};

// -- HeadroomExhaustionDetector ---------------------------------------------

class HeadroomExhaustionDetector : public HealthDetector {
 public:
  HeadroomExhaustionDetector(const HeadroomExhaustionOptions& options,
                             std::vector<std::string> node_names)
      : options_(options), node_names_(std::move(node_names)) {}

  const char* name() const override { return "headroom_exhaustion"; }

  void OnWindow(size_t index, const SeriesWindow& w, const HealthInput&,
                AlertSink* sink) override {
    if (states_.size() < w.nodes.size()) states_.resize(w.nodes.size());
    for (size_t i = 0; i < w.nodes.size(); ++i) {
      const SeriesNodeWindow& node = w.nodes[i];
      NodeState& st = states_[i];
      if (node.charges <= 0) continue;
      st.samples.push_back(Sample{static_cast<double>(index),
                                  node.min_headroom_frac,
                                  static_cast<double>(w.committed)});
      if (st.samples.size() > options_.lookback) st.samples.pop_front();

      const double latest = node.min_headroom_frac;
      bool firing = false;
      double slope = 0.0;
      double windows_to_zero = -1.0;
      const bool exhausted = latest < options_.exhausted_frac;
      if (!exhausted && st.samples.size() >= options_.lookback &&
          options_.lookback >= 3 && latest <= options_.max_start_frac) {
        bool monotone = true;
        for (size_t s = 1; s < st.samples.size(); ++s) {
          if (st.samples[s].frac >
              st.samples[s - 1].frac + options_.monotone_eps) {
            monotone = false;
            break;
          }
        }
        // The drain must be ongoing, not historical: a load ramp that
        // settled into a plateau declines over the full lookback but
        // not over its trailing half.
        const size_t mid = st.samples.size() / 2;
        const double recent_decline =
            st.samples[mid].frac - st.samples.back().frac;
        // Headroom falling while throughput is still ramping up is the
        // expected response to the ramp, not a drain.
        double lead_committed = 0.0;
        double trail_committed = 0.0;
        for (size_t s = 0; s < st.samples.size(); ++s) {
          (s < mid ? lead_committed : trail_committed) +=
              st.samples[s].committed;
        }
        lead_committed /= static_cast<double>(mid);
        trail_committed /= static_cast<double>(st.samples.size() - mid);
        const bool load_ramping =
            lead_committed > 0.0 &&
            trail_committed > options_.max_load_ramp * lead_committed;
        if (monotone && !load_ramping &&
            recent_decline >= options_.min_decline) {
          slope = FitSlope(st.samples);
          if (slope < 0.0) {
            windows_to_zero = latest / -slope;
            firing = windows_to_zero <= options_.horizon_windows;
          }
        }
      }
      firing = firing || exhausted;

      if (firing) {
        if (!st.open) {
          Alert alert;
          alert.detector = name();
          alert.severity =
              latest < 0.0 ? AlertSeverity::kError : AlertSeverity::kWarn;
          alert.first_window = index;
          alert.last_window = index;
          alert.start_s = w.start_s;
          alert.end_s = WindowEnd(w);
          alert.node = i < node_names_.size() ? node_names_[i] : FormatCount(i);
          if (exhausted) {
            alert.message = "epsilon headroom exhausted at node '" +
                            alert.node + "': min headroom fraction " +
                            FormatNum(latest) + " < " +
                            FormatNum(options_.exhausted_frac);
          } else {
            alert.message = "epsilon headroom at node '" + alert.node +
                            "' trending to zero: fraction " +
                            FormatNum(latest) + ", ~" +
                            FormatNum(windows_to_zero) + " windows to empty";
          }
          alert.evidence.emplace_back("headroom_frac", latest);
          alert.evidence.emplace_back("slope_per_window", slope);
          alert.evidence.emplace_back("windows_to_zero", windows_to_zero);
          st.handle = sink->OpenAlert(std::move(alert));
          st.open = true;
        } else {
          sink->ExtendAlert(st.handle, index, WindowEnd(w));
        }
      } else if (st.open) {
        sink->CloseAlert(st.handle);
        st.open = false;
      }
    }
  }

 private:
  struct Sample {
    double window = 0.0;
    double frac = 0.0;
    double committed = 0.0;
  };

  struct NodeState {
    std::deque<Sample> samples;
    size_t handle = 0;
    bool open = false;
  };

  static double FitSlope(const std::deque<Sample>& pts) {
    const double n = static_cast<double>(pts.size());
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    for (const Sample& p : pts) {
      sx += p.window;
      sy += p.frac;
      sxx += p.window * p.window;
      sxy += p.window * p.frac;
    }
    const double denom = n * sxx - sx * sx;
    if (denom <= 0.0) return 0.0;
    return (n * sxy - sx * sy) / denom;
  }

  HeadroomExhaustionOptions options_;
  std::vector<std::string> node_names_;
  std::vector<NodeState> states_;
};

// -- CertificationStallDetector ---------------------------------------------

class CertificationStallDetector : public HealthDetector {
 public:
  explicit CertificationStallDetector(const CertificationStallOptions& options)
      : options_(options) {}

  const char* name() const override { return "certification_stall"; }

  void OnWindow(size_t index, const SeriesWindow& w, const HealthInput&,
                AlertSink* sink) override {
    if (w.certified_through_s < 0.0 || w.duration_s <= 0.0) return;
    const double lag_windows =
        (WindowEnd(w) - w.certified_through_s) / w.duration_s;
    if (lag_windows >= options_.max_lag_windows) {
      if (!open_) {
        Alert alert;
        alert.detector = name();
        alert.severity = AlertSeverity::kError;
        alert.first_window = index;
        alert.last_window = index;
        alert.start_s = w.start_s;
        alert.end_s = WindowEnd(w);
        alert.message = "certification watermark stalled: certified through " +
                        FormatNum(w.certified_through_s) + " s, " +
                        FormatNum(lag_windows) +
                        " windows behind the window boundary";
        alert.evidence.emplace_back("lag_windows", lag_windows);
        alert.evidence.emplace_back("certified_through_s",
                                    w.certified_through_s);
        handle_ = sink->OpenAlert(std::move(alert));
        open_ = true;
      } else {
        sink->ExtendAlert(handle_, index, WindowEnd(w));
      }
    } else if (open_) {
      sink->CloseAlert(handle_);
      open_ = false;
    }
  }

 private:
  CertificationStallOptions options_;
  size_t handle_ = 0;
  bool open_ = false;
};

// -- ShardImbalanceDetector -------------------------------------------------

class ShardImbalanceDetector : public HealthDetector {
 public:
  explicit ShardImbalanceDetector(const ShardImbalanceOptions& options)
      : options_(options) {}

  const char* name() const override { return "shard_imbalance"; }

  void OnWindow(size_t index, const SeriesWindow& w, const HealthInput& input,
                AlertSink* sink) override {
    bool qualifies = false;
    double ratio = 0.0;
    double mean = 0.0;
    int64_t max_ops = 0;
    int hot_shard = -1;
    if (input.shard_ops.size() >= 2) {
      int64_t total = 0;
      for (size_t i = 0; i < input.shard_ops.size(); ++i) {
        total += input.shard_ops[i];
        if (input.shard_ops[i] > max_ops) {
          max_ops = input.shard_ops[i];
          hot_shard = static_cast<int>(i);
        }
      }
      if (total >= options_.min_total_ops && total > 0) {
        mean = static_cast<double>(total) /
               static_cast<double>(input.shard_ops.size());
        ratio = static_cast<double>(max_ops) / mean;
        qualifies = ratio >= options_.max_ratio;
      }
    }

    if (qualifies) {
      if (streak_ == 0) {
        streak_start_ = index;
        streak_start_s_ = w.start_s;
      }
      ++streak_;
      if (streak_ == options_.min_windows) {
        Alert alert;
        alert.detector = name();
        alert.severity = AlertSeverity::kWarn;
        alert.first_window = streak_start_;
        alert.last_window = index;
        alert.start_s = streak_start_s_;
        alert.end_s = WindowEnd(w);
        alert.shard = hot_shard;
        alert.message = "shard imbalance: shard " + FormatCount(hot_shard) +
                        " carries " + FormatNum(ratio) +
                        "x the mean per-shard op rate";
        alert.evidence.emplace_back("max_over_mean", ratio);
        alert.evidence.emplace_back("hot_shard_ops",
                                    static_cast<double>(max_ops));
        alert.evidence.emplace_back("mean_shard_ops", mean);
        handle_ = sink->OpenAlert(std::move(alert));
        open_ = true;
      } else if (open_) {
        sink->ExtendAlert(handle_, index, WindowEnd(w));
      }
    } else {
      if (open_) {
        sink->CloseAlert(handle_);
        open_ = false;
      }
      streak_ = 0;
    }
  }

 private:
  ShardImbalanceOptions options_;
  size_t streak_ = 0;
  size_t streak_start_ = 0;
  double streak_start_s_ = 0.0;
  size_t handle_ = 0;
  bool open_ = false;
};

}  // namespace

// -- Alert / monitor --------------------------------------------------------

const char* AlertSeverityName(AlertSeverity severity) {
  switch (severity) {
    case AlertSeverity::kWarn:
      return "warn";
    case AlertSeverity::kError:
      return "error";
  }
  return "warn";
}

HealthMonitor::HealthMonitor(HealthOptions options)
    : options_(std::move(options)) {
  if (options_.livelock.enabled) {
    detectors_.push_back(
        std::make_unique<AbortLivelockDetector>(options_.livelock));
  }
  if (options_.bistability.enabled) {
    detectors_.push_back(
        std::make_unique<ThrashingBistabilityDetector>(options_.bistability));
  }
  if (options_.headroom.enabled) {
    detectors_.push_back(std::make_unique<HeadroomExhaustionDetector>(
        options_.headroom, options_.node_names));
  }
  if (options_.certification.enabled) {
    detectors_.push_back(
        std::make_unique<CertificationStallDetector>(options_.certification));
  }
  if (options_.shard_imbalance.enabled) {
    detectors_.push_back(
        std::make_unique<ShardImbalanceDetector>(options_.shard_imbalance));
  }
}

HealthMonitor::~HealthMonitor() = default;

void HealthMonitor::AddDetector(std::unique_ptr<HealthDetector> detector) {
  detectors_.push_back(std::move(detector));
}

void HealthMonitor::OnWindow(const SeriesWindow& window,
                             const HealthInput& input) {
  const size_t index = windows_++;
  for (auto& detector : detectors_) {
    detector->OnWindow(index, window, input, this);
  }
}

void HealthMonitor::Finish() {
  if (finished_) return;
  finished_ = true;
  for (auto& detector : detectors_) {
    detector->Finish(this);
  }
}

size_t HealthMonitor::active_alerts() const {
  size_t active = 0;
  for (const Alert& a : alerts_) {
    if (a.open) ++active;
  }
  return active;
}

bool HealthMonitor::detector_active(const std::string& name) const {
  for (const Alert& a : alerts_) {
    if (a.open && a.detector == name) return true;
  }
  return false;
}

std::vector<std::string> HealthMonitor::detector_names() const {
  std::vector<std::string> names;
  names.reserve(detectors_.size());
  for (const auto& d : detectors_) names.emplace_back(d->name());
  return names;
}

HealthReport HealthMonitor::Report() const {
  HealthReport report;
  report.source = options_.source;
  report.window_s = options_.window_s;
  report.windows = windows_;
  report.alerts = alerts_;
  return report;
}

void HealthMonitor::ExportGauges(MetricRegistry* metrics) const {
  if (metrics == nullptr) return;
  metrics->gauge("alert.count").Set(static_cast<double>(alerts_.size()));
  for (const auto& d : detectors_) {
    metrics->gauge(std::string("alert.active.") + d->name())
        .Set(detector_active(d->name()) ? 1.0 : 0.0);
  }
}

size_t HealthMonitor::OpenAlert(Alert alert) {
  alert.open = true;
  if (options_.log_alerts) {
    if (alert.severity == AlertSeverity::kError) {
      ESR_LOG(kError) << "health: " << alert.detector
                      << " alert opened at window " << alert.first_window
                      << ": " << alert.message;
    } else {
      ESR_LOG(kWarning) << "health: " << alert.detector
                        << " alert opened at window " << alert.first_window
                        << ": " << alert.message;
    }
  }
  alerts_.push_back(std::move(alert));
  return alerts_.size() - 1;
}

void HealthMonitor::ExtendAlert(size_t handle, size_t window, double end_s) {
  if (handle >= alerts_.size()) return;
  Alert& a = alerts_[handle];
  a.last_window = window;
  a.end_s = end_s;
}

void HealthMonitor::CloseAlert(size_t handle) {
  if (handle >= alerts_.size()) return;
  alerts_[handle].open = false;
}

// -- Offline analysis -------------------------------------------------------

HealthReport AnalyzeSeries(const RunSeries& series, HealthOptions options) {
  if (options.source.empty()) options.source = series.source;
  options.window_s = series.window_s;
  if (options.node_names.empty()) options.node_names = series.node_names;
  HealthMonitor monitor(std::move(options));
  for (const SeriesWindow& w : series.windows) {
    monitor.OnWindow(w);
  }
  monitor.Finish();
  return monitor.Report();
}

// -- Journal ----------------------------------------------------------------

void WriteHealthJson(const HealthReport& report, std::ostream& out) {
  JsonWriter w(out);
  w.BeginObject();
  w.Key("health");
  w.BeginObject();
  w.KV("source", report.source);
  w.KV("window_s", report.window_s);
  w.KV("windows", static_cast<int64_t>(report.windows));
  w.KV("healthy", report.healthy());
  w.KV("alert_count", static_cast<int64_t>(report.alerts.size()));
  w.Key("alerts");
  w.BeginArray();
  for (const Alert& a : report.alerts) {
    w.BeginObject();
    w.KV("detector", a.detector);
    w.KV("severity", AlertSeverityName(a.severity));
    w.KV("first_window", static_cast<int64_t>(a.first_window));
    w.KV("last_window", static_cast<int64_t>(a.last_window));
    w.KV("start_s", a.start_s);
    w.KV("end_s", a.end_s);
    w.KV("node", a.node);
    w.KV("shard", static_cast<int64_t>(a.shard));
    w.KV("open", a.open);
    w.KV("message", a.message);
    w.Key("evidence");
    w.BeginObject();
    for (const auto& kv : a.evidence) {
      w.KV(kv.first, kv.second);
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.EndObject();
  out << "\n";
}

Status WriteHealthJsonToFile(const HealthReport& report,
                             const std::string& path) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open health journal for writing: " + path);
  }
  WriteHealthJson(report, out);
  out.flush();
  if (!out) {
    return Status::Internal("failed writing health journal: " + path);
  }
  return Status::OK();
}

Result<HealthReport> ReadHealthJson(std::istream& in) {
  std::ostringstream buf;
  buf << in.rdbuf();
  JsonValue root;
  std::string error;
  if (!ParseJson(buf.str(), &root, &error)) {
    return Status::InvalidArgument("health journal parse error: " + error);
  }
  const JsonValue* health = root.Find("health");
  if (health == nullptr || !health->is_object()) {
    return Status::InvalidArgument(
        "health journal missing top-level \"health\" object");
  }
  HealthReport report;
  if (const JsonValue* v = health->Find("source")) report.source = v->string;
  report.window_s = health->NumberOr("window_s", 1.0);
  report.windows = static_cast<size_t>(health->NumberOr("windows", 0.0));
  const JsonValue* alerts = health->Find("alerts");
  if (alerts == nullptr || !alerts->is_array()) {
    return Status::InvalidArgument("health journal missing \"alerts\" array");
  }
  for (const JsonValue& entry : alerts->array) {
    if (!entry.is_object()) {
      return Status::InvalidArgument("health journal alert is not an object");
    }
    Alert a;
    if (const JsonValue* v = entry.Find("detector")) a.detector = v->string;
    if (const JsonValue* v = entry.Find("severity")) {
      a.severity = v->string == "error" ? AlertSeverity::kError
                                        : AlertSeverity::kWarn;
    }
    a.first_window = static_cast<size_t>(entry.NumberOr("first_window", 0.0));
    a.last_window = static_cast<size_t>(entry.NumberOr("last_window", 0.0));
    a.start_s = entry.NumberOr("start_s", 0.0);
    a.end_s = entry.NumberOr("end_s", 0.0);
    if (const JsonValue* v = entry.Find("node")) a.node = v->string;
    a.shard = static_cast<int>(entry.NumberOr("shard", -1.0));
    if (const JsonValue* v = entry.Find("open")) a.open = v->bool_value;
    if (const JsonValue* v = entry.Find("message")) a.message = v->string;
    if (const JsonValue* ev = entry.Find("evidence")) {
      for (const auto& kv : ev->object) {
        a.evidence.emplace_back(kv.first, kv.second.number);
      }
    }
    report.alerts.push_back(std::move(a));
  }
  return report;
}

Result<HealthReport> ReadHealthJsonFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::Internal("cannot open health journal: " + path);
  }
  return ReadHealthJson(in);
}

void WriteHealthText(const HealthReport& report, std::ostream& out) {
  out << "health report";
  if (!report.source.empty()) out << " — " << report.source;
  out << "\n";
  out << "  windows analyzed: " << report.windows << " ("
      << FormatNum(report.window_s) << " s each)\n";
  if (report.healthy()) {
    out << "  status: HEALTHY — no alerts\n";
    return;
  }
  out << "  status: " << report.alerts.size() << " alert(s)\n";
  for (const Alert& a : report.alerts) {
    out << "  [" << AlertSeverityName(a.severity) << "] " << a.detector
        << ": windows " << a.first_window << ".." << a.last_window << " ("
        << FormatNum(a.start_s) << " s.." << FormatNum(a.end_s) << " s)";
    if (!a.node.empty()) out << " node=" << a.node;
    if (a.shard >= 0) out << " shard=" << a.shard;
    if (a.open) out << " [still open at run end]";
    out << "\n      " << a.message << "\n";
    for (const auto& kv : a.evidence) {
      out << "      " << kv.first << " = " << FormatNum(kv.second) << "\n";
    }
  }
}

// -- Demo series ------------------------------------------------------------

RunSeries BuildLivelockDemoSeries() {
  RunSeries series;
  series.source = "demo livelock (synthetic, after the MPL 2/low episode)";
  series.window_s = 1.0;
  series.node_names = {"root", "accounts"};
  const size_t total_windows = 40;
  for (size_t i = 0; i < total_windows; ++i) {
    SeriesWindow w;
    w.start_s = static_cast<double>(i);
    w.duration_s = 1.0;
    const bool livelocked = i >= 12 && i <= 25;
    if (livelocked) {
      // The recorded episode: zero commits while aborting 61-70 per 5 s
      // window — about 13 per 1 s window here.
      w.committed = 0;
      w.aborted = 13;
      w.restarts = 13;
      w.active_mpl = 2.0;
      w.mean_op_latency_ms = 9.0;
    } else {
      w.committed = 54 + static_cast<int64_t>(i % 3);
      w.aborted = 6;
      w.restarts = 6;
      w.active_mpl = 2.0;
      w.mean_op_latency_ms = 5.0;
    }
    SeriesNodeWindow root;
    root.max_accumulated = 1.2;
    root.min_headroom_frac = 0.7;
    root.limit_at_min = 4.0;
    root.charges = w.aborted + w.committed;
    SeriesNodeWindow accounts;
    accounts.max_accumulated = 0.8;
    accounts.min_headroom_frac = 0.6;
    accounts.limit_at_min = 2.0;
    accounts.charges = w.aborted + w.committed;
    w.nodes = {root, accounts};
    series.windows.push_back(std::move(w));
  }
  return series;
}

RunSeries BuildBistableDemoSeries() {
  RunSeries series;
  series.source = "demo bistability (synthetic, after the MPL >= 8 regimes)";
  series.window_s = 1.0;
  series.node_names = {"root"};
  const size_t total_windows = 40;
  for (size_t i = 0; i < total_windows; ++i) {
    SeriesWindow w;
    w.start_s = static_cast<double>(i);
    w.duration_s = 1.0;
    // The documented split: per-seed committed throughput clusters at
    // ~17 tps and ~7 tps. Alternate regimes in 4-window blocks.
    const bool high_regime = (i / 4) % 2 == 0;
    w.committed = high_regime ? 17 : 7;
    w.aborted = high_regime ? 20 : 35;
    w.restarts = w.aborted;
    w.active_mpl = 9.0;
    w.mean_op_latency_ms = high_regime ? 12.0 : 28.0;
    SeriesNodeWindow root;
    root.max_accumulated = 1.5;
    root.min_headroom_frac = 0.4;
    root.limit_at_min = 4.0;
    root.charges = w.aborted + w.committed;
    w.nodes = {root};
    series.windows.push_back(std::move(w));
  }
  return series;
}

}  // namespace esr
