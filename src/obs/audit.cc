#include "obs/audit.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "obs/exporter.h"
#include "obs/stream_audit.h"

namespace esr {

namespace {

struct SpanInfo {
  SpanKind kind = SpanKind::kOp;
  TxnId txn = 0;
  uint64_t parent = 0;
  int64_t begin_ts = 0;
  int64_t end_ts = -1;

  bool complete() const { return end_ts >= begin_ts; }
  int64_t duration() const { return end_ts - begin_ts; }
};

struct TxnInfo {
  SiteId site = 0;
  int64_t begin_ts = -1;
  int64_t end_ts = -1;
  /// 0 end not captured, 1 committed, 2 aborted.
  int outcome = 0;
  /// Begin timestamps of this transaction's RPC spans, in trace order
  /// (monotonic), for locating the retry that follows a Wait verdict.
  std::vector<int64_t> rpc_begins;
};

}  // namespace

AuditReport AuditTrace(const std::vector<TraceEvent>& events,
                       const TraceMetadata& metadata) {
  AuditReport report;
  report.metadata = metadata;
  report.num_events = events.size();

  // ---- Pass 1: span index and transaction lifecycle ----------------------
  std::unordered_map<uint64_t, SpanInfo> spans;
  std::unordered_map<TxnId, TxnInfo> txns;
  int64_t last_ts = 0;

  auto touch_txn = [&txns](const TraceEvent& e) -> TxnInfo& {
    TxnInfo& t = txns[e.txn];
    if (t.site == 0) t.site = e.site;
    return t;
  };

  for (const TraceEvent& e : events) {
    last_ts = std::max(last_ts, e.ts_micros);
    switch (e.type) {
      case TraceEventType::kSpanBegin: {
        SpanInfo& s = spans[e.span];
        s.kind = static_cast<SpanKind>(e.detail);
        s.txn = e.txn;
        s.parent = e.parent;
        s.begin_ts = e.ts_micros;
        if (e.txn != 0) {
          TxnInfo& t = touch_txn(e);
          if (s.kind == SpanKind::kRpc) t.rpc_begins.push_back(e.ts_micros);
        }
        break;
      }
      case TraceEventType::kSpanEnd: {
        auto it = spans.find(e.span);
        if (it != spans.end()) it->second.end_ts = e.ts_micros;
        break;
      }
      case TraceEventType::kBegin:
        if (e.txn != 0) touch_txn(e).begin_ts = e.ts_micros;
        break;
      case TraceEventType::kCommit:
        if (e.txn != 0) {
          TxnInfo& t = touch_txn(e);
          t.end_ts = e.ts_micros;
          t.outcome = 1;
        }
        break;
      case TraceEventType::kAbort:
        if (e.txn != 0) {
          TxnInfo& t = touch_txn(e);
          t.end_ts = e.ts_micros;
          t.outcome = 2;
        }
        break;
      default:
        if (e.txn != 0) touch_txn(e);
        break;
    }
  }

  report.txns_seen = txns.size();
  for (const auto& [id, t] : txns) {
    (void)id;
    if (t.outcome == 1) ++report.txns_committed;
    if (t.outcome == 2) ++report.txns_aborted;
  }

  // ---- Pass 2: hierarchical bound recertification ------------------------
  // The Sec. 5.3.1 replay itself lives in BoundWalkReplayer (shared with
  // the streaming certifier, which consumes the same events live); the
  // offline pass feeds the whole capture through it and then resolves each
  // violation's end timestamp from the transaction table built in pass 1.
  BoundWalkReplayer replayer;
  for (const TraceEvent& e : events) replayer.OnEvent(e);
  report.walks_replayed = replayer.walks_replayed();
  report.charges_applied = replayer.charges_applied();
  report.violations = std::move(*replayer.mutable_violations());

  for (BoundViolation& v : report.violations) {
    const auto it = txns.find(v.txn);
    v.ts_end = (it != txns.end() && it->second.end_ts >= 0)
                   ? it->second.end_ts
                   : last_ts;
  }

  // ---- Pass 3: conflict chains -------------------------------------------
  std::unordered_map<TxnId, int64_t> conflict_wait_by_txn;
  for (const TraceEvent& e : events) {
    if (e.type != TraceEventType::kWait) continue;
    ConflictEdge edge;
    edge.waiter = e.txn;
    edge.writer = e.parent;
    edge.object = e.target;
    edge.ts_wait = e.ts_micros;
    const auto it = txns.find(e.txn);
    if (it != txns.end()) {
      // The wait ends when the client comes back: the first RPC attempt
      // issued after the verdict.
      const std::vector<int64_t>& rpcs = it->second.rpc_begins;
      const auto retry =
          std::upper_bound(rpcs.begin(), rpcs.end(), e.ts_micros);
      if (retry != rpcs.end()) edge.wait_micros = *retry - e.ts_micros;
    }
    conflict_wait_by_txn[edge.waiter] += edge.wait_micros;
    report.conflicts.push_back(edge);
  }

  std::unordered_map<TxnId, BlockerSummary> blockers;
  for (const ConflictEdge& edge : report.conflicts) {
    BlockerSummary& b = blockers[edge.writer];
    b.writer = edge.writer;
    ++b.waits_induced;
    b.total_wait_micros += edge.wait_micros;
  }
  for (auto& [writer, b] : blockers) {
    const auto it = txns.find(writer);
    if (it != txns.end() && it->second.outcome == 1) b.outcome = 'c';
    if (it != txns.end() && it->second.outcome == 2) b.outcome = 'a';
    report.blockers.push_back(b);
  }
  std::sort(report.blockers.begin(), report.blockers.end(),
            [](const BlockerSummary& a, const BlockerSummary& b) {
              if (a.total_wait_micros != b.total_wait_micros) {
                return a.total_wait_micros > b.total_wait_micros;
              }
              return a.waits_induced > b.waits_induced;
            });

  // ---- Pass 4: critical-path decomposition -------------------------------
  struct PathAccum {
    int64_t rpc = 0;
    int64_t service = 0;
    int64_t service_in_rpc = 0;
    int64_t txn_span = -1;
  };
  std::unordered_map<TxnId, PathAccum> paths;
  for (const auto& [id, s] : spans) {
    (void)id;
    if (!s.complete() || s.txn == 0) continue;
    PathAccum& p = paths[s.txn];
    switch (s.kind) {
      case SpanKind::kTxn:
        p.txn_span = s.duration();
        break;
      case SpanKind::kRpc:
        p.rpc += s.duration();
        break;
      case SpanKind::kOp:
      case SpanKind::kCommit: {
        p.service += s.duration();
        const auto parent = spans.find(s.parent);
        if (parent != spans.end() &&
            parent->second.kind == SpanKind::kRpc) {
          p.service_in_rpc += s.duration();
        }
        break;
      }
      case SpanKind::kBoundWalk:
        break;  // nested inside an op; already counted as service
    }
  }

  double sum_total = 0, sum_rpc = 0, sum_service = 0, sum_conflict = 0,
         sum_other = 0;
  for (const auto& [id, t] : txns) {
    if (t.outcome != 1) continue;
    TxnBreakdown b;
    b.txn = id;
    b.site = t.site;
    b.committed = true;
    const auto pit = paths.find(id);
    const PathAccum p = pit != paths.end() ? pit->second : PathAccum{};
    if (p.txn_span >= 0) {
      b.total_micros = p.txn_span;
    } else if (t.begin_ts >= 0 && t.end_ts >= t.begin_ts) {
      b.total_micros = t.end_ts - t.begin_ts;
    } else {
      continue;  // lifetime not captured; nothing to decompose
    }
    b.rpc_wait_micros = std::max<int64_t>(0, p.rpc - p.service_in_rpc);
    b.service_micros = p.service;
    const auto cit = conflict_wait_by_txn.find(id);
    b.conflict_wait_micros = cit != conflict_wait_by_txn.end() ? cit->second : 0;
    b.other_micros =
        std::max<int64_t>(0, b.total_micros - b.rpc_wait_micros -
                                 b.service_micros - b.conflict_wait_micros);
    sum_total += static_cast<double>(b.total_micros);
    sum_rpc += static_cast<double>(b.rpc_wait_micros);
    sum_service += static_cast<double>(b.service_micros);
    sum_conflict += static_cast<double>(b.conflict_wait_micros);
    sum_other += static_cast<double>(b.other_micros);
    report.breakdowns.push_back(b);
  }
  std::sort(report.breakdowns.begin(), report.breakdowns.end(),
            [](const TxnBreakdown& a, const TxnBreakdown& b) {
              if (a.total_micros != b.total_micros) {
                return a.total_micros > b.total_micros;
              }
              return a.txn < b.txn;
            });
  if (!report.breakdowns.empty()) {
    const double n = static_cast<double>(report.breakdowns.size());
    report.avg_total = sum_total / n;
    report.avg_rpc_wait = sum_rpc / n;
    report.avg_service = sum_service / n;
    report.avg_conflict_wait = sum_conflict / n;
    report.avg_other = sum_other / n;
  }

  return report;
}

void PrintAuditReport(const AuditReport& report, std::ostream& out,
                      size_t top_n) {
  out << "== esr_audit ==\n";
  out << "events: " << report.num_events
      << " (recorded " << report.metadata.recorded << ", dropped "
      << report.metadata.dropped << ", ring capacity "
      << report.metadata.capacity << ")\n";
  if (report.metadata.dropped > 0) {
    out << "warning: trace is truncated; accumulations replay from the "
           "retained suffix (certification stays sound, latency/conflict "
           "stats cover the suffix only)\n";
  }
  out << "transactions: " << report.txns_seen << " seen, "
      << report.txns_committed << " committed, " << report.txns_aborted
      << " aborted\n";
  out << "bound walks replayed: " << report.walks_replayed << " ("
      << report.charges_applied << " node charges)\n";

  if (report.certified()) {
    out << "bound certification: PASS — every admitted charge within its "
           "declared hierarchical bounds\n";
  } else {
    out << "bound certification: FAIL — " << report.violations.size()
        << " node(s) exceeded their declared bound\n";
    for (const BoundViolation& v : report.violations) {
      out << "  VIOLATION txn " << v.txn << " "
          << ChargeDirectionToString(v.direction) << " group " << v.group
          << " (level " << v.level << "): accumulated " << v.accumulated
          << " > limit " << v.limit << " during [" << v.ts_begin << ", "
          << v.ts_end << "] us\n";
    }
  }

  out << "conflicts: " << report.conflicts.size() << " wait(s)";
  if (report.blockers.empty()) {
    out << "\n";
  } else {
    out << "; top blockers:\n";
    size_t shown = 0;
    for (const BlockerSummary& b : report.blockers) {
      if (shown++ >= top_n) break;
      out << "  writer " << b.writer << " ["
          << (b.outcome == 'c' ? "committed"
                               : (b.outcome == 'a' ? "aborted" : "unknown"))
          << "]: " << b.waits_induced << " wait(s), "
          << b.total_wait_micros << " us induced\n";
    }
  }

  if (!report.breakdowns.empty()) {
    out << "commit critical path (avg over " << report.breakdowns.size()
        << " committed txns, us): total " << report.avg_total
        << " = rpc wait " << report.avg_rpc_wait << " + service "
        << report.avg_service << " + conflict wait "
        << report.avg_conflict_wait << " + other " << report.avg_other
        << "\n";
    out << "slowest commits:\n";
    size_t shown = 0;
    for (const TxnBreakdown& b : report.breakdowns) {
      if (shown++ >= top_n) break;
      out << "  txn " << b.txn << " (site " << b.site << "): total "
          << b.total_micros << " us = rpc " << b.rpc_wait_micros
          << " + service " << b.service_micros << " + conflict "
          << b.conflict_wait_micros << " + other " << b.other_micros
          << "\n";
    }
  }
}

bool StreamMatchesOffline(const AuditReport& report,
                          const StreamCertification& stream) {
  if (stream.walks_replayed != report.walks_replayed ||
      stream.charges_applied != report.charges_applied ||
      stream.violations.size() != report.violations.size()) {
    return false;
  }
  for (size_t i = 0; i < report.violations.size(); ++i) {
    const BoundViolation& a = report.violations[i];
    const BoundViolation& b = stream.violations[i];
    if (a.txn != b.txn || a.direction != b.direction ||
        a.group != b.group || a.level != b.level ||
        a.ts_begin != b.ts_begin || a.ts_end != b.ts_end ||
        a.accumulated != b.accumulated || a.limit != b.limit) {
      return false;
    }
  }
  return true;
}

void WriteAuditJson(const AuditReport& report, std::ostream& out,
                    size_t top_n, const StreamCertification* stream) {
  JsonWriter w(out);
  w.BeginObject();
  w.KV("certified", report.certified());
  w.KV("events", static_cast<uint64_t>(report.num_events));
  w.Key("metadata");
  w.BeginObject();
  w.KV("recorded", report.metadata.recorded);
  w.KV("dropped", report.metadata.dropped);
  w.KV("capacity", report.metadata.capacity);
  w.EndObject();
  w.Key("transactions");
  w.BeginObject();
  w.KV("seen", static_cast<uint64_t>(report.txns_seen));
  w.KV("committed", static_cast<uint64_t>(report.txns_committed));
  w.KV("aborted", static_cast<uint64_t>(report.txns_aborted));
  w.EndObject();
  w.KV("walks_replayed", static_cast<uint64_t>(report.walks_replayed));
  w.KV("charges_applied", static_cast<uint64_t>(report.charges_applied));

  w.Key("violations");
  w.BeginArray();
  for (const BoundViolation& v : report.violations) {
    w.BeginObject();
    w.KV("txn", v.txn);
    w.KV("direction", ChargeDirectionToString(v.direction));
    w.KV("group", v.group);
    w.KV("level", static_cast<int64_t>(v.level));
    w.KV("ts_begin", v.ts_begin);
    w.KV("ts_end", v.ts_end);
    w.KV("accumulated", v.accumulated);
    w.KV("limit", v.limit);
    w.EndObject();
  }
  w.EndArray();

  w.KV("conflict_waits", static_cast<uint64_t>(report.conflicts.size()));
  w.Key("top_blockers");
  w.BeginArray();
  size_t shown = 0;
  for (const BlockerSummary& b : report.blockers) {
    if (shown++ >= top_n) break;
    w.BeginObject();
    w.KV("writer", b.writer);
    w.KV("waits_induced", b.waits_induced);
    w.KV("total_wait_micros", b.total_wait_micros);
    w.KV("outcome", b.outcome == 'c' ? "committed"
                                     : (b.outcome == 'a' ? "aborted"
                                                         : "unknown"));
    w.EndObject();
  }
  w.EndArray();

  w.Key("critical_path_avg_micros");
  w.BeginObject();
  w.KV("total", report.avg_total);
  w.KV("rpc_wait", report.avg_rpc_wait);
  w.KV("service", report.avg_service);
  w.KV("conflict_wait", report.avg_conflict_wait);
  w.KV("other", report.avg_other);
  w.EndObject();

  w.Key("slowest_commits");
  w.BeginArray();
  shown = 0;
  for (const TxnBreakdown& b : report.breakdowns) {
    if (shown++ >= top_n) break;
    w.BeginObject();
    w.KV("txn", b.txn);
    w.KV("site", static_cast<uint64_t>(b.site));
    w.KV("total_micros", b.total_micros);
    w.KV("rpc_wait_micros", b.rpc_wait_micros);
    w.KV("service_micros", b.service_micros);
    w.KV("conflict_wait_micros", b.conflict_wait_micros);
    w.KV("other_micros", b.other_micros);
    w.EndObject();
  }
  w.EndArray();

  if (stream != nullptr) {
    w.Key("stream");
    w.BeginObject();
    w.KV("enabled", stream->enabled);
    w.KV("certified", stream->certified());
    w.KV("certified_through_s", stream->certified_through_s);
    w.KV("certified_from_s", stream->certified_from_s);
    w.KV("observed_through_s", stream->observed_through_s);
    w.KV("windows_closed", static_cast<uint64_t>(stream->windows_closed));
    w.KV("lag_windows", stream->lag_windows);
    w.KV("violations", static_cast<uint64_t>(stream->violations.size()));
    w.KV("matches_offline", StreamMatchesOffline(report, *stream));
    w.EndObject();
  }

  w.EndObject();
  out << "\n";
}

}  // namespace esr
