#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <fstream>

#include "cc/to_policy.h"

namespace esr {

const char* TraceEventTypeToString(TraceEventType type) {
  switch (type) {
    case TraceEventType::kBegin:
      return "Begin";
    case TraceEventType::kRead:
      return "Read";
    case TraceEventType::kWrite:
      return "Write";
    case TraceEventType::kCommit:
      return "Commit";
    case TraceEventType::kAbort:
      return "Abort";
    case TraceEventType::kBoundCheck:
      return "BoundCheck";
    case TraceEventType::kImportCharge:
      return "ImportCharge";
    case TraceEventType::kWait:
      return "Wait";
    case TraceEventType::kSpanBegin:
      return "SpanBegin";
    case TraceEventType::kSpanEnd:
      return "SpanEnd";
    case TraceEventType::kFlowBegin:
      return "FlowBegin";
    case TraceEventType::kFlowEnd:
      return "FlowEnd";
    case TraceEventType::kViolation:
      return "Violation";
  }
  return "?";
}

const char* SpanKindToString(SpanKind kind) {
  switch (kind) {
    case SpanKind::kTxn:
      return "txn";
    case SpanKind::kRpc:
      return "rpc";
    case SpanKind::kOp:
      return "op";
    case SpanKind::kCommit:
      return "commit";
    case SpanKind::kBoundWalk:
      return "bound_walk";
  }
  return "?";
}

TraceEvent TraceEvent::BeginTxn(TxnId txn, TxnType type, SiteId site) {
  TraceEvent e;
  e.type = TraceEventType::kBegin;
  e.detail = static_cast<uint8_t>(type);
  e.site = site;
  e.txn = txn;
  return e;
}

TraceEvent TraceEvent::Op(TraceEventType type, TxnId txn, SiteId site,
                          ObjectId object) {
  TraceEvent e;
  e.type = type;
  e.site = site;
  e.txn = txn;
  e.target = object;
  return e;
}

TraceEvent TraceEvent::CommitTxn(TxnId txn, SiteId site) {
  TraceEvent e;
  e.type = TraceEventType::kCommit;
  e.site = site;
  e.txn = txn;
  return e;
}

TraceEvent TraceEvent::AbortTxn(TxnId txn, SiteId site, uint8_t reason) {
  TraceEvent e;
  e.type = TraceEventType::kAbort;
  e.detail = reason;
  e.site = site;
  e.txn = txn;
  return e;
}

TraceEvent TraceEvent::BoundCheck(TxnId txn, SiteId site, uint16_t level,
                                  uint64_t group, Inconsistency charged,
                                  Inconsistency limit, bool admitted) {
  TraceEvent e;
  e.type = TraceEventType::kBoundCheck;
  e.detail = admitted ? 1 : 0;
  e.level = level;
  e.site = site;
  e.txn = txn;
  e.target = group;
  e.charged = charged;
  e.limit = limit;
  return e;
}

TraceEvent TraceEvent::ImportCharge(TxnId txn, SiteId site, ObjectId object,
                                    Inconsistency d) {
  TraceEvent e;
  e.type = TraceEventType::kImportCharge;
  e.site = site;
  e.txn = txn;
  e.target = object;
  e.charged = d;
  return e;
}

TraceEvent TraceEvent::WaitOn(TxnId txn, SiteId site, ObjectId object,
                              TxnId writer) {
  TraceEvent e;
  e.type = TraceEventType::kWait;
  e.site = site;
  e.txn = txn;
  e.target = object;
  e.parent = writer;
  return e;
}

TraceEvent TraceEvent::SpanBeginEvent(SpanKind kind, uint64_t span,
                                      uint64_t parent, TxnId txn, SiteId site,
                                      uint64_t target) {
  TraceEvent e;
  e.type = TraceEventType::kSpanBegin;
  e.detail = static_cast<uint8_t>(kind);
  e.site = site;
  e.txn = txn;
  e.target = target;
  e.span = span;
  e.parent = parent;
  return e;
}

TraceEvent TraceEvent::SpanEndEvent(SpanKind kind, uint64_t span, TxnId txn,
                                    SiteId site) {
  TraceEvent e;
  e.type = TraceEventType::kSpanEnd;
  e.detail = static_cast<uint8_t>(kind);
  e.site = site;
  e.txn = txn;
  e.span = span;
  return e;
}

TraceEvent TraceEvent::Flow(TraceEventType type, uint64_t flow, TxnId txn,
                            SiteId site) {
  TraceEvent e;
  e.type = type;
  e.site = site;
  e.txn = txn;
  e.span = flow;
  return e;
}

TraceEvent TraceEvent::Violation(TxnId txn, SiteId site, uint16_t level,
                                 uint64_t group, double accumulated,
                                 double limit, int direction) {
  TraceEvent e;
  e.type = TraceEventType::kViolation;
  e.detail = static_cast<uint8_t>((direction & 1) << 1);
  e.level = level;
  e.site = site;
  e.txn = txn;
  e.target = group;
  e.charged = accumulated;
  e.limit = limit;
  return e;
}

TraceRecorder::TraceRecorder(size_t capacity)
    : ring_(capacity > 0 ? capacity : 1) {}

int64_t TraceRecorder::NowMicros() const {
  const TimeSourceFn fn = time_fn_.load(std::memory_order_acquire);
  if (fn != nullptr) {
    return fn(time_ctx_.load(std::memory_order_acquire));
  }
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void TraceRecorder::SetTimeSource(TimeSourceFn fn, void* ctx) {
  time_ctx_.store(ctx, std::memory_order_release);
  time_fn_.store(fn, std::memory_order_release);
}

void TraceRecorder::SetObserver(ObserverFn fn, void* ctx) {
  observer_ctx_.store(ctx, std::memory_order_release);
  observer_fn_.store(fn, std::memory_order_release);
}

namespace {
/// True while this thread is inside an observer callback: events the
/// observer records still land in the ring, but are not re-delivered.
thread_local bool t_in_observer = false;
}  // namespace

uint32_t ThreadLaneId() {
  static std::atomic<uint32_t> next_lane{1};
  thread_local const uint32_t lane =
      next_lane.fetch_add(1, std::memory_order_relaxed);
  return lane;
}

void TraceRecorder::Record(TraceEvent event) {
  event.ts_micros = NowMicros();
  if (event.lane == 0) event.lane = ThreadLaneId();
  // Instants recorded inside a span inherit it, so the auditor can tie a
  // BoundCheck or Wait back to the op/walk that produced it. Span and
  // flow events carry their own ids and are left alone.
  if (event.span == 0 && event.type != TraceEventType::kSpanBegin &&
      event.type != TraceEventType::kSpanEnd &&
      event.type != TraceEventType::kFlowBegin &&
      event.type != TraceEventType::kFlowEnd) {
    event.span = CurrentSpan();
  }
  const uint64_t slot = next_.fetch_add(1, std::memory_order_relaxed);
  ring_[slot % ring_.size()] = event;
  const ObserverFn observer = observer_fn_.load(std::memory_order_acquire);
  if (observer != nullptr && !t_in_observer) {
    t_in_observer = true;
    observer(observer_ctx_.load(std::memory_order_acquire), event);
    t_in_observer = false;
  }
}

size_t TraceRecorder::size() const {
  const uint64_t n = next_.load(std::memory_order_relaxed);
  return n < ring_.size() ? static_cast<size_t>(n) : ring_.size();
}

uint64_t TraceRecorder::dropped() const {
  const uint64_t n = next_.load(std::memory_order_relaxed);
  return n > ring_.size() ? n - ring_.size() : 0;
}

void TraceRecorder::Reset() {
  next_.store(0, std::memory_order_relaxed);
  next_span_id_.store(1, std::memory_order_relaxed);
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  const uint64_t n = next_.load(std::memory_order_relaxed);
  const size_t cap = ring_.size();
  std::vector<TraceEvent> out;
  const size_t count = n < cap ? static_cast<size_t>(n) : cap;
  out.reserve(count);
  // Oldest retained event first: when wrapped, the slot after the last
  // write holds the oldest survivor.
  const uint64_t start = n < cap ? 0 : n - cap;
  for (uint64_t i = start; i < n; ++i) out.push_back(ring_[i % cap]);
  return out;
}

namespace {

void WriteCommonFields(std::ostream& out, const TraceEvent& e,
                       bool thread_lanes) {
  out << "\"ts\":" << e.ts_micros << ",\"pid\":" << e.site << ",\"tid\":"
      << (thread_lanes ? static_cast<uint64_t>(e.lane) : e.txn);
}

void WriteDouble(std::ostream& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out << buf;
}

}  // namespace

void WriteChromeTraceEvents(const std::vector<TraceEvent>& events,
                            std::ostream& out, uint64_t recorded,
                            uint64_t dropped, size_t capacity,
                            bool thread_lanes) {
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out << ",";
    first = false;
    out << "\n  {";
    switch (e.type) {
      case TraceEventType::kSpanBegin:
      case TraceEventType::kSpanEnd: {
        const SpanKind kind = static_cast<SpanKind>(e.detail);
        const bool begin = e.type == TraceEventType::kSpanBegin;
        out << "\"name\":\"" << SpanKindToString(kind) << "\",";
        if (kind == SpanKind::kTxn) {
          // The transaction span's end is recorded while an op or commit
          // span is still open on the same (pid, tid) track, which would
          // violate the strict LIFO rule of sync B/E pairs. Async
          // nestable events are matched by id instead of stack order.
          out << "\"ph\":\"" << (begin ? "b" : "e")
              << "\",\"cat\":\"txn\",\"id\":" << e.span << ",";
        } else {
          out << "\"ph\":\"" << (begin ? "B" : "E") << "\",";
        }
        WriteCommonFields(out, e, thread_lanes);
        out << ",\"args\":{\"span\":" << e.span << ",\"lane\":" << e.lane;
        if (thread_lanes) out << ",\"txn\":" << e.txn;
        if (begin) {
          out << ",\"parent\":" << e.parent << ",\"target\":" << e.target;
        }
        out << "}}";
        continue;
      }
      case TraceEventType::kFlowBegin:
      case TraceEventType::kFlowEnd: {
        const bool begin = e.type == TraceEventType::kFlowBegin;
        out << "\"name\":\"conflict\",\"cat\":\"conflict\",\"ph\":\""
            << (begin ? "s" : "f") << "\"";
        // Bind the arrow to the enclosing slice's *end*, so it lands on
        // the waiter's op and the writer's commit rather than floating.
        if (!begin) out << ",\"bp\":\"e\"";
        out << ",\"id\":" << e.span << ",";
        WriteCommonFields(out, e, thread_lanes);
        out << "}";
        continue;
      }
      default:
        break;
    }
    out << "\"name\":\"" << TraceEventTypeToString(e.type)
        << "\",\"ph\":\"i\",\"s\":\"t\",";
    WriteCommonFields(out, e, thread_lanes);
    out << ",\"args\":{";
    out << "\"target\":" << e.target << ",\"level\":" << e.level
        << ",\"detail\":" << static_cast<int>(e.detail)
        << ",\"span\":" << e.span << ",\"lane\":" << e.lane;
    if (thread_lanes) out << ",\"txn\":" << e.txn;
    if (e.type == TraceEventType::kAbort) {
      out << ",\"reason\":\""
          << AbortReasonToString(static_cast<AbortReason>(e.detail)) << "\"";
    }
    if (e.type == TraceEventType::kWait) {
      out << ",\"writer\":" << e.parent;
    }
    if (e.type == TraceEventType::kBoundCheck ||
        e.type == TraceEventType::kImportCharge ||
        e.type == TraceEventType::kViolation) {
      out << ",\"charged\":";
      WriteDouble(out, e.charged);
    }
    if (e.type == TraceEventType::kBoundCheck ||
        e.type == TraceEventType::kViolation) {
      // Infinity is not valid JSON; clamp unbounded limits to a sentinel.
      out << ",\"limit\":";
      WriteDouble(out, e.limit == kUnbounded ? -1.0 : e.limit);
      // detail bit 0 = admitted, bit 1 = accumulator direction.
      out << ",\"dir\":\"" << ((e.detail & 2) != 0 ? "export" : "import")
          << "\"";
    }
    if (e.type == TraceEventType::kBoundCheck) {
      out << ",\"outcome\":\"" << ((e.detail & 1) != 0 ? "admit" : "reject")
          << "\"";
    }
    out << "}}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
      << "\"recorded\":" << recorded << ",\"dropped\":" << dropped
      << ",\"capacity\":" << capacity << "}}\n";
}

void TraceRecorder::ExportChromeTrace(std::ostream& out) const {
  WriteChromeTraceEvents(Snapshot(), out, recorded(), dropped(), capacity());
}

Status TraceRecorder::ExportChromeTraceToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound("cannot open trace output file: " + path);
  }
  ExportChromeTrace(out);
  out.flush();
  if (!out.good()) {
    return Status::Internal("failed writing trace to: " + path);
  }
  if (dropped() > 0) {
    std::fprintf(stderr,
                 "[esr-trace] warning: ring wrapped, %llu of %llu events "
                 "lost (capacity %zu); trace %s is truncated\n",
                 static_cast<unsigned long long>(dropped()),
                 static_cast<unsigned long long>(recorded()), capacity(),
                 path.c_str());
  }
  return Status::OK();
}

namespace internal {
std::atomic<bool> g_global_trace_enabled{false};
}  // namespace internal

TraceRecorder& GlobalTrace() {
  static TraceRecorder* recorder = [] {
    auto* r = new TraceRecorder();
    r->enabled_mirror_ = &internal::g_global_trace_enabled;
    return r;
  }();
  return *recorder;
}

// -- Thread-local span context --------------------------------------------

namespace {
thread_local std::vector<uint64_t> t_span_stack;
}  // namespace

uint64_t CurrentSpan() {
  return t_span_stack.empty() ? 0 : t_span_stack.back();
}

void PushSpan(uint64_t span) { t_span_stack.push_back(span); }

void PopSpan() {
  if (!t_span_stack.empty()) t_span_stack.pop_back();
}

#ifndef ESR_TRACE_DISABLED

namespace internal {

uint64_t BeginSpanSlow(SpanKind kind, TxnId txn, SiteId site,
                       uint64_t target, uint64_t parent) {
  TraceRecorder& trace = GlobalTrace();
  if (!trace.enabled()) return 0;
  const uint64_t id = trace.NextSpanId();
  if (parent == 0) parent = CurrentSpan();
  trace.Record(
      TraceEvent::SpanBeginEvent(kind, id, parent, txn, site, target));
  return id;
}

void EndSpanSlow(SpanKind kind, uint64_t span, TxnId txn, SiteId site) {
  GlobalTrace().Record(TraceEvent::SpanEndEvent(kind, span, txn, site));
}

}  // namespace internal

void TraceSpan::Open(SpanKind kind, TxnId txn, SiteId site, uint64_t target,
                     uint64_t fallback_parent) {
  kind_ = kind;
  txn_ = txn;
  site_ = site;
  TraceRecorder& trace = GlobalTrace();
  uint64_t parent = CurrentSpan();
  if (parent == 0) parent = fallback_parent;
  id_ = trace.NextSpanId();
  trace.Record(
      TraceEvent::SpanBeginEvent(kind, id_, parent, txn, site, target));
  PushSpan(id_);
}

void TraceSpan::Close() {
  PopSpan();
  GlobalTrace().Record(TraceEvent::SpanEndEvent(kind_, id_, txn_, site_));
}

#endif  // !ESR_TRACE_DISABLED

}  // namespace esr
