#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <fstream>

#include "cc/to_policy.h"

namespace esr {

const char* TraceEventTypeToString(TraceEventType type) {
  switch (type) {
    case TraceEventType::kBegin:
      return "Begin";
    case TraceEventType::kRead:
      return "Read";
    case TraceEventType::kWrite:
      return "Write";
    case TraceEventType::kCommit:
      return "Commit";
    case TraceEventType::kAbort:
      return "Abort";
    case TraceEventType::kBoundCheck:
      return "BoundCheck";
    case TraceEventType::kImportCharge:
      return "ImportCharge";
    case TraceEventType::kWait:
      return "Wait";
  }
  return "?";
}

TraceEvent TraceEvent::BeginTxn(TxnId txn, TxnType type, SiteId site) {
  TraceEvent e;
  e.type = TraceEventType::kBegin;
  e.detail = static_cast<uint8_t>(type);
  e.site = site;
  e.txn = txn;
  return e;
}

TraceEvent TraceEvent::Op(TraceEventType type, TxnId txn, SiteId site,
                          ObjectId object) {
  TraceEvent e;
  e.type = type;
  e.site = site;
  e.txn = txn;
  e.target = object;
  return e;
}

TraceEvent TraceEvent::CommitTxn(TxnId txn, SiteId site) {
  TraceEvent e;
  e.type = TraceEventType::kCommit;
  e.site = site;
  e.txn = txn;
  return e;
}

TraceEvent TraceEvent::AbortTxn(TxnId txn, SiteId site, uint8_t reason) {
  TraceEvent e;
  e.type = TraceEventType::kAbort;
  e.detail = reason;
  e.site = site;
  e.txn = txn;
  return e;
}

TraceEvent TraceEvent::BoundCheck(TxnId txn, SiteId site, uint16_t level,
                                  uint64_t group, Inconsistency charged,
                                  Inconsistency limit, bool admitted) {
  TraceEvent e;
  e.type = TraceEventType::kBoundCheck;
  e.detail = admitted ? 1 : 0;
  e.level = level;
  e.site = site;
  e.txn = txn;
  e.target = group;
  e.charged = charged;
  e.limit = limit;
  return e;
}

TraceEvent TraceEvent::ImportCharge(TxnId txn, SiteId site, ObjectId object,
                                    Inconsistency d) {
  TraceEvent e;
  e.type = TraceEventType::kImportCharge;
  e.site = site;
  e.txn = txn;
  e.target = object;
  e.charged = d;
  return e;
}

TraceEvent TraceEvent::WaitOn(TxnId txn, SiteId site, ObjectId object) {
  TraceEvent e;
  e.type = TraceEventType::kWait;
  e.site = site;
  e.txn = txn;
  e.target = object;
  return e;
}

TraceRecorder::TraceRecorder(size_t capacity)
    : ring_(capacity > 0 ? capacity : 1) {}

int64_t TraceRecorder::NowMicros() const {
  const TimeSourceFn fn = time_fn_.load(std::memory_order_acquire);
  if (fn != nullptr) {
    return fn(time_ctx_.load(std::memory_order_acquire));
  }
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void TraceRecorder::SetTimeSource(TimeSourceFn fn, void* ctx) {
  time_ctx_.store(ctx, std::memory_order_release);
  time_fn_.store(fn, std::memory_order_release);
}

void TraceRecorder::Record(TraceEvent event) {
  event.ts_micros = NowMicros();
  const uint64_t slot = next_.fetch_add(1, std::memory_order_relaxed);
  ring_[slot % ring_.size()] = event;
}

size_t TraceRecorder::size() const {
  const uint64_t n = next_.load(std::memory_order_relaxed);
  return n < ring_.size() ? static_cast<size_t>(n) : ring_.size();
}

uint64_t TraceRecorder::dropped() const {
  const uint64_t n = next_.load(std::memory_order_relaxed);
  return n > ring_.size() ? n - ring_.size() : 0;
}

void TraceRecorder::Reset() { next_.store(0, std::memory_order_relaxed); }

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  const uint64_t n = next_.load(std::memory_order_relaxed);
  const size_t cap = ring_.size();
  std::vector<TraceEvent> out;
  const size_t count = n < cap ? static_cast<size_t>(n) : cap;
  out.reserve(count);
  // Oldest retained event first: when wrapped, the slot after the last
  // write holds the oldest survivor.
  const uint64_t start = n < cap ? 0 : n - cap;
  for (uint64_t i = start; i < n; ++i) out.push_back(ring_[i % cap]);
  return out;
}

void TraceRecorder::ExportChromeTrace(std::ostream& out) const {
  const std::vector<TraceEvent> events = Snapshot();
  out << "[";
  bool first = true;
  char buf[64];
  for (const TraceEvent& e : events) {
    if (!first) out << ",";
    first = false;
    out << "\n  {\"name\":\"" << TraceEventTypeToString(e.type)
        << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << e.ts_micros
        << ",\"pid\":" << e.site << ",\"tid\":" << e.txn << ",\"args\":{";
    out << "\"target\":" << e.target << ",\"level\":" << e.level
        << ",\"detail\":" << static_cast<int>(e.detail);
    if (e.type == TraceEventType::kAbort) {
      out << ",\"reason\":\""
          << AbortReasonToString(static_cast<AbortReason>(e.detail)) << "\"";
    }
    if (e.type == TraceEventType::kBoundCheck ||
        e.type == TraceEventType::kImportCharge) {
      std::snprintf(buf, sizeof(buf), "%.17g", e.charged);
      out << ",\"charged\":" << buf;
    }
    if (e.type == TraceEventType::kBoundCheck) {
      // Infinity is not valid JSON; clamp unbounded limits to a sentinel.
      const double limit = e.limit == kUnbounded ? -1.0 : e.limit;
      std::snprintf(buf, sizeof(buf), "%.17g", limit);
      out << ",\"limit\":" << buf
          << ",\"outcome\":\"" << (e.detail != 0 ? "admit" : "reject")
          << "\"";
    }
    out << "}}";
  }
  out << "\n]\n";
}

Status TraceRecorder::ExportChromeTraceToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound("cannot open trace output file: " + path);
  }
  ExportChromeTrace(out);
  out.flush();
  if (!out.good()) {
    return Status::Internal("failed writing trace to: " + path);
  }
  return Status::OK();
}

TraceRecorder& GlobalTrace() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

}  // namespace esr
