#ifndef ESR_OBS_TRACE_H_
#define ESR_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/timestamp.h"
#include "common/types.h"

namespace esr {

/// Kind of a transaction-lifecycle trace event. One enumerator per probe
/// point the engines and the divergence-control machinery expose.
enum class TraceEventType : uint8_t {
  kBegin = 0,
  kRead,
  kWrite,
  kCommit,
  kAbort,
  /// One hierarchy-node check of the bottom-up control loop (Sec. 5.3.1):
  /// level 0 is the transaction level (root), deeper levels are groups.
  kBoundCheck,
  /// A relaxed read successfully charged imported inconsistency.
  kImportCharge,
  /// Strict ordering told the operation to wait for an uncommitted writer.
  kWait,
};

const char* TraceEventTypeToString(TraceEventType type);

/// One fixed-size trace record. Which payload fields are meaningful
/// depends on `type`; unused fields are zero. POD on purpose: recording
/// must be a handful of stores.
struct TraceEvent {
  TraceEventType type = TraceEventType::kBegin;
  /// Type-dependent discriminator: TxnType for kBegin, AbortReason for
  /// kAbort, 1/0 admitted flag for kBoundCheck.
  uint8_t detail = 0;
  /// Hierarchy depth for kBoundCheck (0 = root/transaction level).
  uint16_t level = 0;
  /// Issuing site (from the transaction timestamp); 0 when unknown.
  SiteId site = 0;
  TxnId txn = 0;
  /// Wall or virtual microseconds, from the recorder's time source.
  int64_t ts_micros = 0;
  /// ObjectId for operation events, GroupId for kBoundCheck.
  uint64_t target = 0;
  /// Inconsistency charged/imported (kBoundCheck, kImportCharge).
  double charged = 0.0;
  /// The node limit the charge was checked against (kBoundCheck).
  double limit = 0.0;

  // -- Factories for the probe sites --------------------------------------
  static TraceEvent BeginTxn(TxnId txn, TxnType type, SiteId site);
  static TraceEvent Op(TraceEventType type, TxnId txn, SiteId site,
                       ObjectId object);
  static TraceEvent CommitTxn(TxnId txn, SiteId site);
  static TraceEvent AbortTxn(TxnId txn, SiteId site, uint8_t reason);
  /// `group` is the GroupId of the checked node, widened so this header
  /// does not depend on the hierarchy layer.
  static TraceEvent BoundCheck(TxnId txn, SiteId site, uint16_t level,
                               uint64_t group, Inconsistency charged,
                               Inconsistency limit, bool admitted);
  static TraceEvent ImportCharge(TxnId txn, SiteId site, ObjectId object,
                                 Inconsistency d);
  static TraceEvent WaitOn(TxnId txn, SiteId site, ObjectId object);
};

/// Bounded ring-buffer recorder of trace events.
///
/// Recording is wait-free: a relaxed fetch_add claims a slot and the event
/// is copied in, so the single-threaded simulator pays a few stores per
/// event and the threaded server never serializes on the recorder. When
/// the ring wraps, the oldest events are overwritten (`dropped()` counts
/// them). Snapshot/export must run while no writer is active — the same
/// quiescence the benchmarks' end-of-run reporting already has.
///
/// Runtime-off by default: `Record` is only called behind the
/// `ESR_TRACE_EVENT` macro, which checks `enabled()` (one relaxed atomic
/// load) first, so a disabled recorder costs a predictable branch.
class TraceRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  explicit TraceRecorder(size_t capacity = kDefaultCapacity);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Stamps `event` with the current time source reading and stores it.
  void Record(TraceEvent event);

  /// Redirects event timestamps, e.g. to the simulator's virtual clock.
  /// `fn(ctx)` must stay valid until ClearTimeSource(); `fn == nullptr`
  /// restores the default wall-clock (steady, microseconds) source.
  using TimeSourceFn = int64_t (*)(void* ctx);
  void SetTimeSource(TimeSourceFn fn, void* ctx);
  void ClearTimeSource() { SetTimeSource(nullptr, nullptr); }

  size_t capacity() const { return ring_.size(); }
  /// Events currently retained (<= capacity).
  size_t size() const;
  /// Total events ever recorded.
  uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }
  /// Events lost to ring wraparound.
  uint64_t dropped() const;

  /// Drops all events (keeps enabled state and time source).
  void Reset();

  /// Retained events, oldest first. Caller must ensure no concurrent
  /// writers (see class comment).
  std::vector<TraceEvent> Snapshot() const;

  /// Writes the retained events as Chrome trace-event JSON (the format
  /// Perfetto / about:tracing load): a JSON array of instant events with
  /// "name", "ph", "ts", "pid" (site), "tid" (transaction) and an "args"
  /// object carrying the payload fields.
  void ExportChromeTrace(std::ostream& out) const;
  Status ExportChromeTraceToFile(const std::string& path) const;

 private:
  int64_t NowMicros() const;

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_{0};
  std::atomic<TimeSourceFn> time_fn_{nullptr};
  std::atomic<void*> time_ctx_{nullptr};
  std::vector<TraceEvent> ring_;
};

/// The process-wide recorder the ESR_TRACE_EVENT probes feed. Disabled by
/// default; tests, examples, and the bench/threaded-server flags enable it
/// around the region of interest.
TraceRecorder& GlobalTrace();

/// RAII redirect of the global recorder's clock — e.g. to a simulator's
/// virtual time for the duration of a run — restored on scope exit.
class ScopedTraceTimeSource {
 public:
  ScopedTraceTimeSource(TraceRecorder::TimeSourceFn fn, void* ctx) {
    GlobalTrace().SetTimeSource(fn, ctx);
  }
  ~ScopedTraceTimeSource() { GlobalTrace().ClearTimeSource(); }

  ScopedTraceTimeSource(const ScopedTraceTimeSource&) = delete;
  ScopedTraceTimeSource& operator=(const ScopedTraceTimeSource&) = delete;
};

}  // namespace esr

/// Probe macro: evaluates `event_expr` and records it iff the global
/// recorder is enabled. Compiles away entirely (including `event_expr`)
/// when the build defines ESR_TRACE_DISABLED (CMake -DESR_DISABLE_TRACING).
#ifdef ESR_TRACE_DISABLED
#define ESR_TRACE_EVENT(event_expr) \
  do {                              \
  } while (0)
#else
#define ESR_TRACE_EVENT(event_expr)                 \
  do {                                              \
    if (::esr::GlobalTrace().enabled()) {           \
      ::esr::GlobalTrace().Record((event_expr));    \
    }                                               \
  } while (0)
#endif

#endif  // ESR_OBS_TRACE_H_
