#ifndef ESR_OBS_TRACE_H_
#define ESR_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/timestamp.h"
#include "common/types.h"

namespace esr {

/// Kind of a transaction-lifecycle trace event. One enumerator per probe
/// point the engines and the divergence-control machinery expose, plus
/// the span/flow structure events the causal tracer emits.
enum class TraceEventType : uint8_t {
  kBegin = 0,
  kRead,
  kWrite,
  kCommit,
  kAbort,
  /// One hierarchy-node check of the bottom-up control loop (Sec. 5.3.1):
  /// level 0 is the transaction level (root), deeper levels are groups.
  kBoundCheck,
  /// A relaxed read successfully charged imported inconsistency.
  kImportCharge,
  /// Strict ordering told the operation to wait for an uncommitted writer.
  kWait,
  /// Opens a causal span (`span` = id, `parent` = parent span id,
  /// `detail` = SpanKind). Exported as Chrome "B" (sync) or "b" (async).
  kSpanBegin,
  /// Closes the span with the same `span` id.
  kSpanEnd,
  /// Flow-arrow anchor at a conflict site (`span` = flow id, which is the
  /// blocking writer's TxnId). Exported as Chrome "s".
  kFlowBegin,
  /// Flow-arrow target at the blocking writer's commit/abort (`span` =
  /// the writer's own TxnId). Exported as Chrome "f".
  kFlowEnd,
  /// The streaming certifier caught an admitted charge past its declared
  /// bound (`target` = violated GroupId, `charged` = replayed
  /// accumulation, `limit` = the crossed limit, detail bit 1 = direction
  /// as in kBoundCheck). Emitted *by* the certifier, ignored by replay.
  kViolation,
};

const char* TraceEventTypeToString(TraceEventType type);

/// What a causal span covers. Spans nest: txn > rpc > op > bound_walk,
/// with commit taking op's place for the commit/abort processing leg.
enum class SpanKind : uint8_t {
  /// Server-side transaction lifetime, Begin to commit/abort teardown.
  /// Exported as a Chrome *async* pair ("b"/"e") because its end is
  /// recorded while an op or commit span is still open on the same track.
  kTxn = 0,
  /// Client-observed RPC leg: issue, travel, CPU queueing, service, and
  /// the response's travel back.
  kRpc,
  /// One engine Read/Write under the engine latch (CPU service time).
  kOp,
  /// Engine commit/abort processing.
  kCommit,
  /// One bottom-up bound-check walk in the accumulator; its kBoundCheck
  /// instants attach to this span.
  kBoundWalk,
};

const char* SpanKindToString(SpanKind kind);
inline constexpr size_t kNumSpanKinds =
    static_cast<size_t>(SpanKind::kBoundWalk) + 1;

/// One fixed-size trace record. Which payload fields are meaningful
/// depends on `type`; unused fields are zero. POD on purpose: recording
/// must be a handful of stores.
struct TraceEvent {
  TraceEventType type = TraceEventType::kBegin;
  /// Type-dependent discriminator: TxnType for kBegin, AbortReason for
  /// kAbort, 1/0 admitted flag for kBoundCheck, SpanKind for
  /// kSpanBegin/kSpanEnd.
  uint8_t detail = 0;
  /// Hierarchy depth for kBoundCheck (0 = root/transaction level).
  uint16_t level = 0;
  /// Issuing site (from the transaction timestamp); 0 when unknown.
  SiteId site = 0;
  /// Small dense id of the recording thread (ThreadLaneId), stamped by
  /// TraceRecorder::Record when left zero. The single-threaded simulator
  /// records everything on one lane; the threaded server gets one lane
  /// per client thread, which the Chrome exporter can use as the "tid"
  /// so captures decompose into per-thread tracks (thread_lanes mode).
  uint32_t lane = 0;
  TxnId txn = 0;
  /// Wall or virtual microseconds, from the recorder's time source.
  int64_t ts_micros = 0;
  /// ObjectId for operation events, GroupId for kBoundCheck.
  uint64_t target = 0;
  /// Causal linkage: the span's own id for kSpanBegin/kSpanEnd, the flow
  /// id for kFlowBegin/kFlowEnd, and the *enclosing* span for every other
  /// event (auto-filled by TraceRecorder::Record from the thread's span
  /// stack when left zero).
  uint64_t span = 0;
  /// Parent span id for kSpanBegin; for kWait, the TxnId of the
  /// uncommitted writer the operation is blocked on.
  uint64_t parent = 0;
  /// Inconsistency charged/imported (kBoundCheck, kImportCharge).
  double charged = 0.0;
  /// The node limit the charge was checked against (kBoundCheck).
  double limit = 0.0;

  // -- Factories for the probe sites --------------------------------------
  static TraceEvent BeginTxn(TxnId txn, TxnType type, SiteId site);
  static TraceEvent Op(TraceEventType type, TxnId txn, SiteId site,
                       ObjectId object);
  static TraceEvent CommitTxn(TxnId txn, SiteId site);
  static TraceEvent AbortTxn(TxnId txn, SiteId site, uint8_t reason);
  /// `group` is the GroupId of the checked node, widened so this header
  /// does not depend on the hierarchy layer.
  static TraceEvent BoundCheck(TxnId txn, SiteId site, uint16_t level,
                               uint64_t group, Inconsistency charged,
                               Inconsistency limit, bool admitted);
  static TraceEvent ImportCharge(TxnId txn, SiteId site, ObjectId object,
                                 Inconsistency d);
  /// `writer` is the uncommitted writer the operation must wait for; the
  /// offline auditor reconstructs conflict chains from it.
  static TraceEvent WaitOn(TxnId txn, SiteId site, ObjectId object,
                           TxnId writer);
  static TraceEvent SpanBeginEvent(SpanKind kind, uint64_t span,
                                   uint64_t parent, TxnId txn, SiteId site,
                                   uint64_t target);
  static TraceEvent SpanEndEvent(SpanKind kind, uint64_t span, TxnId txn,
                                 SiteId site);
  /// `type` must be kFlowBegin or kFlowEnd; `flow` is the flow id (the
  /// blocking writer's TxnId by convention).
  static TraceEvent Flow(TraceEventType type, uint64_t flow, TxnId txn,
                         SiteId site);
  /// Certifier-detected bound violation marker (see kViolation).
  static TraceEvent Violation(TxnId txn, SiteId site, uint16_t level,
                              uint64_t group, double accumulated,
                              double limit, int direction);
};

/// Stamps an explicit enclosing span on an instant event (used where the
/// enclosing span is known but not on the thread's span stack, e.g. the
/// kBegin instant inside the just-opened transaction span).
inline TraceEvent WithSpan(TraceEvent event, uint64_t span) {
  event.span = span;
  return event;
}

/// Bounded ring-buffer recorder of trace events.
///
/// Recording is wait-free: a relaxed fetch_add claims a slot and the event
/// is copied in, so the single-threaded simulator pays a few stores per
/// event and the threaded server never serializes on the recorder. When
/// the ring wraps, the oldest events are overwritten (`dropped()` counts
/// them). Snapshot/export must run while no writer is active — the same
/// quiescence the benchmarks' end-of-run reporting already has.
///
/// Runtime-off by default: `Record` is only called behind the
/// `ESR_TRACE_EVENT` macro, which checks `enabled()` (one relaxed atomic
/// load) first, so a disabled recorder costs a predictable branch.
class TraceRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 18;

  explicit TraceRecorder(size_t capacity = kDefaultCapacity);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
    if (enabled_mirror_ != nullptr) {
      enabled_mirror_->store(enabled, std::memory_order_relaxed);
    }
  }

  /// Stamps `event` with the current time source reading, attaches the
  /// calling thread's current span to instant events recorded without an
  /// explicit one, and stores it.
  void Record(TraceEvent event);

  /// Allocates a process-unique causal span id (never 0).
  uint64_t NextSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Redirects event timestamps, e.g. to the simulator's virtual clock.
  /// `fn(ctx)` must stay valid until ClearTimeSource(); `fn == nullptr`
  /// restores the default wall-clock (steady, microseconds) source.
  using TimeSourceFn = int64_t (*)(void* ctx);
  void SetTimeSource(TimeSourceFn fn, void* ctx);
  void ClearTimeSource() { SetTimeSource(nullptr, nullptr); }

  /// Subscribes an observer that Record invokes synchronously with every
  /// stamped event, after it is stored in the ring — the streaming
  /// certifier's feed. At most one observer; `fn(ctx, event)` must stay
  /// valid until ClearObserver() and must be cheap (it runs on the
  /// recording thread, under whatever concurrency the recorder sees).
  /// Events the observer itself records are delivered to the ring but not
  /// back to the observer, so it can emit markers without recursing.
  using ObserverFn = void (*)(void* ctx, const TraceEvent& event);
  void SetObserver(ObserverFn fn, void* ctx);
  void ClearObserver() { SetObserver(nullptr, nullptr); }

  size_t capacity() const { return ring_.size(); }
  /// Events currently retained (<= capacity).
  size_t size() const;
  /// Total events ever recorded.
  uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }
  /// Events lost to ring wraparound.
  uint64_t dropped() const;

  /// Drops all events (keeps enabled state and time source).
  void Reset();

  /// Retained events, oldest first. Caller must ensure no concurrent
  /// writers (see class comment).
  std::vector<TraceEvent> Snapshot() const;

  /// Writes the retained events as Chrome trace-event JSON (the format
  /// Perfetto / about:tracing load): an object with a "traceEvents" array
  /// — "pid" is the site, "tid" the transaction, spans are "B"/"E"
  /// (sync) or "b"/"e" (async, transaction lifetime) pairs, conflict
  /// flow arrows are "s"/"f" pairs — plus an "otherData" object carrying
  /// recorder metadata (recorded/dropped/capacity), so a consumer can
  /// tell whether the capture lost events to ring wraparound.
  void ExportChromeTrace(std::ostream& out) const;
  /// File variant; logs a warning line to stderr when events were
  /// dropped, so lossy captures never pass silently.
  Status ExportChromeTraceToFile(const std::string& path) const;

 private:
  friend TraceRecorder& GlobalTrace();

  int64_t NowMicros() const;

  std::atomic<bool> enabled_{false};
  /// Set only on the GlobalTrace() recorder: mirrors enabled_ into the
  /// constant-initialized flag the inline probe fast path reads, so a
  /// disabled probe costs one relaxed load and a branch — no call, no
  /// static-init guard.
  std::atomic<bool>* enabled_mirror_ = nullptr;
  std::atomic<uint64_t> next_{0};
  std::atomic<uint64_t> next_span_id_{1};
  std::atomic<TimeSourceFn> time_fn_{nullptr};
  std::atomic<void*> time_ctx_{nullptr};
  std::atomic<ObserverFn> observer_fn_{nullptr};
  std::atomic<void*> observer_ctx_{nullptr};
  std::vector<TraceEvent> ring_;
};

/// Writes an arbitrary event sequence in the Chrome trace JSON format
/// TraceRecorder::ExportChromeTrace emits — used to persist perturbed and
/// minimized schedules that never lived in a recorder. The counters fill
/// the "otherData" metadata block.
///
/// With `thread_lanes` set, "tid" carries the recording thread's lane
/// (TraceEvent::lane) instead of the transaction id, so a threaded-server
/// capture renders as one Perfetto track per client thread; the
/// transaction id moves into "args" ("txn") and nothing is lost —
/// tools/esr_profile uses this to re-group a standard capture by thread.
void WriteChromeTraceEvents(const std::vector<TraceEvent>& events,
                            std::ostream& out, uint64_t recorded,
                            uint64_t dropped, size_t capacity,
                            bool thread_lanes = false);

/// Small dense id (1-based) of the calling thread, assigned on first use.
/// TraceRecorder::Record stamps it into TraceEvent::lane; the wall-clock
/// profiler (obs/profile.h) uses the same id so phase attribution and
/// trace lanes name threads consistently.
uint32_t ThreadLaneId();

/// The process-wide recorder the ESR_TRACE_EVENT probes feed. Disabled by
/// default; tests, examples, and the bench/threaded-server flags enable it
/// around the region of interest.
TraceRecorder& GlobalTrace();

namespace internal {
/// Mirror of the global recorder's enabled flag (kept in sync by
/// TraceRecorder::set_enabled). Constant-initialized so probes inlined
/// into static initializers read a well-defined `false`.
extern std::atomic<bool> g_global_trace_enabled;
}  // namespace internal

/// Probe-site fast path: is the process-wide recorder enabled? One inline
/// relaxed load — the engines call this on every operation, so it must
/// not involve a function call or a local-static guard.
inline bool GlobalTraceEnabled() {
#ifdef ESR_TRACE_DISABLED
  return false;
#else
  return internal::g_global_trace_enabled.load(std::memory_order_relaxed);
#endif
}

// -- Thread-local span context --------------------------------------------
// Each thread keeps a small stack of open span ids; Record attaches the
// top to instant events so BoundCheck/Wait/... land inside the span that
// caused them. The single-threaded simulator shares one stack, which is
// empty between event-queue callbacks; cross-callback spans (RPC legs)
// are re-established with ScopedSpanParent.

/// Innermost open span on this thread (0 when none).
uint64_t CurrentSpan();
void PushSpan(uint64_t span);
void PopSpan();

#ifndef ESR_TRACE_DISABLED
namespace internal {
uint64_t BeginSpanSlow(SpanKind kind, TxnId txn, SiteId site,
                       uint64_t target, uint64_t parent);
void EndSpanSlow(SpanKind kind, uint64_t span, TxnId txn, SiteId site);
}  // namespace internal

/// Opens a span whose end is recorded elsewhere (possibly another
/// event-queue callback). Returns 0 when tracing is disabled. `parent` 0
/// resolves to the thread's current span.
inline uint64_t BeginSpan(SpanKind kind, TxnId txn, SiteId site,
                          uint64_t target = 0, uint64_t parent = 0) {
  return GlobalTraceEnabled()
             ? internal::BeginSpanSlow(kind, txn, site, target, parent)
             : 0;
}
/// Ends a span opened with BeginSpan; no-op when `span` is 0.
inline void EndSpan(SpanKind kind, uint64_t span, TxnId txn, SiteId site) {
  if (span != 0) internal::EndSpanSlow(kind, span, txn, site);
}
#else
inline uint64_t BeginSpan(SpanKind, TxnId, SiteId, uint64_t = 0,
                          uint64_t = 0) {
  return 0;
}
inline void EndSpan(SpanKind, uint64_t, TxnId, SiteId) {}
#endif

/// RAII span for synchronous scopes (engine operations, bound walks,
/// threaded-server RPC attempts): opens on construction if tracing is
/// enabled, pushes itself as the thread's current span, and closes on
/// scope exit. The parent is the thread's current span if one is open,
/// else `fallback_parent` (typically the transaction span).
class TraceSpan {
 public:
#ifndef ESR_TRACE_DISABLED
  TraceSpan(SpanKind kind, TxnId txn, SiteId site, uint64_t target = 0,
            uint64_t fallback_parent = 0) {
    if (GlobalTraceEnabled()) Open(kind, txn, site, target, fallback_parent);
  }
  ~TraceSpan() {
    if (id_ != 0) Close();
  }
#else
  TraceSpan(SpanKind, TxnId, SiteId, uint64_t = 0, uint64_t = 0) {}
  ~TraceSpan() = default;
#endif

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  uint64_t id() const { return id_; }

 private:
#ifndef ESR_TRACE_DISABLED
  void Open(SpanKind kind, TxnId txn, SiteId site, uint64_t target,
            uint64_t fallback_parent);
  void Close();
#endif

  uint64_t id_ = 0;
#ifndef ESR_TRACE_DISABLED
  SpanKind kind_ = SpanKind::kOp;
  TxnId txn_ = 0;
  SiteId site_ = 0;
#endif
};

/// Re-establishes an externally-owned span (e.g. the sim client's open
/// RPC span) as the thread's current span for a scope, so spans opened
/// inside — the engine's op span — parent to it.
class ScopedSpanParent {
 public:
  explicit ScopedSpanParent(uint64_t span) : active_(span != 0) {
    if (active_) PushSpan(span);
  }
  ~ScopedSpanParent() {
    if (active_) PopSpan();
  }

  ScopedSpanParent(const ScopedSpanParent&) = delete;
  ScopedSpanParent& operator=(const ScopedSpanParent&) = delete;

 private:
  bool active_;
};

/// RAII subscription of an observer (e.g. a StreamCertifier) to the
/// global recorder, cleared on scope exit.
class ScopedTraceObserver {
 public:
  ScopedTraceObserver(TraceRecorder::ObserverFn fn, void* ctx) {
    GlobalTrace().SetObserver(fn, ctx);
  }
  ~ScopedTraceObserver() { GlobalTrace().ClearObserver(); }

  ScopedTraceObserver(const ScopedTraceObserver&) = delete;
  ScopedTraceObserver& operator=(const ScopedTraceObserver&) = delete;
};

/// RAII redirect of the global recorder's clock — e.g. to a simulator's
/// virtual time for the duration of a run — restored on scope exit.
class ScopedTraceTimeSource {
 public:
  ScopedTraceTimeSource(TraceRecorder::TimeSourceFn fn, void* ctx) {
    GlobalTrace().SetTimeSource(fn, ctx);
  }
  ~ScopedTraceTimeSource() { GlobalTrace().ClearTimeSource(); }

  ScopedTraceTimeSource(const ScopedTraceTimeSource&) = delete;
  ScopedTraceTimeSource& operator=(const ScopedTraceTimeSource&) = delete;
};

}  // namespace esr

/// Probe macro: evaluates `event_expr` and records it iff the global
/// recorder is enabled. Compiles away entirely (including `event_expr`)
/// when the build defines ESR_TRACE_DISABLED (CMake -DESR_DISABLE_TRACING).
#ifdef ESR_TRACE_DISABLED
#define ESR_TRACE_EVENT(event_expr) \
  do {                              \
  } while (0)
#else
#define ESR_TRACE_EVENT(event_expr)                 \
  do {                                              \
    if (::esr::GlobalTraceEnabled()) {              \
      ::esr::GlobalTrace().Record((event_expr));    \
    }                                               \
  } while (0)
#endif

#endif  // ESR_OBS_TRACE_H_
