#ifndef ESR_OBS_SERIES_H_
#define ESR_OBS_SERIES_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"

namespace esr {

/// Per-window reading of one hierarchy node's inconsistency telemetry
/// (see NodeHeadroomTracker): extrema over the window, not averages —
/// a bound violation hides in the worst moment, not the mean.
struct SeriesNodeWindow {
  /// Largest accumulated inconsistency any transaction reached at the
  /// node during the window.
  double max_accumulated = 0.0;
  /// Smallest (limit - accumulated) / limit observed; 1.0 when no bounded
  /// charge touched the node this window, negative marks a violation.
  double min_headroom_frac = 1.0;
  /// Limit in force when the minimum was recorded.
  double limit_at_min = 0.0;
  /// Bound charges that touched the node this window.
  int64_t charges = 0;
};

/// One fixed-length virtual-time window of run telemetry.
struct SeriesWindow {
  /// Window start in virtual seconds from run start.
  double start_s = 0.0;
  double duration_s = 0.0;
  int64_t committed = 0;
  int64_t aborted = 0;
  /// Transaction resubmissions after an abort. The synchronous simulated
  /// clients resubmit every aborted attempt, so here this equals
  /// `aborted`; kept separate because other drivers (threaded server,
  /// bounded-restart API paths) drop attempts.
  int64_t restarts = 0;
  /// Active transactions at the window-end sample instant.
  double active_mpl = 0.0;
  /// Mean operation round-trip latency over the window, milliseconds.
  double mean_op_latency_ms = 0.0;
  /// Streaming-certification watermark at this window's boundary, in
  /// virtual seconds (see obs/stream_audit.h): every hierarchical bound
  /// proven to hold through this time. -1 when certification was off for
  /// the run. Monotone across windows; it stops advancing (freezes) at
  /// the first violation's window.
  double certified_through_s = -1.0;
  /// Indexed like RunSeries::node_names; empty when headroom probes were
  /// off (no tracker, or an ESR_TRACE_DISABLED build).
  std::vector<SeriesNodeWindow> nodes;
};

/// A whole run's time series: the tentpole telemetry record produced by
/// sim::SeriesSampler and consumed by the exporters below, the bench
/// harness (`--series`), and tools/esr_series.
struct RunSeries {
  /// Free-form provenance, e.g. "fig07 mpl=10 til=2.0 seed=23757".
  std::string source;
  /// Nominal window length (virtual seconds).
  double window_s = 1.0;
  /// Hierarchy node names, index-aligned with SeriesWindow::nodes.
  std::vector<std::string> node_names;
  std::vector<SeriesWindow> windows;

  /// Committed-per-second series, one sample per window — the input to
  /// MSER-5 warmup truncation.
  std::vector<double> ThroughputSeries() const;
};

// -- Export / import --------------------------------------------------------

/// CSV, long format, one scalar row per window plus one row per
/// (window, bounded node):
///   # esr-series v1 window_s=<w> source=<escaped>
///   kind,window,start_s,duration_s,committed,aborted,restarts,active_mpl,
///       mean_op_latency_ms,node,max_accumulated,min_headroom_frac,
///       limit_at_min,charges,certified_through_s
/// Mirrors the metrics CSV's leading `kind` discriminator so both load
/// with the same one-liner. The reader also accepts the pre-certification
/// 14-field layout (certified_through_s reads as -1 / off).
void WriteSeriesCsv(const RunSeries& series, std::ostream& out);

/// JSON mirror of the CSV (same field names), nested:
///   {"series": {"source", "window_s", "nodes": [...],
///               "windows": [{..., "nodes": [{...}]}]}}
void WriteSeriesJson(const RunSeries& series, std::ostream& out);

Status ExportSeriesCsvToFile(const RunSeries& series,
                             const std::string& path);

/// Parses WriteSeriesCsv output (tools/esr_series round-trip). Rejects
/// malformed headers/rows with InvalidArgument naming the line.
Result<RunSeries> ReadSeriesCsv(std::istream& in);
Result<RunSeries> ReadSeriesCsvFile(const std::string& path);

// -- Analysis (tools/esr_series, bench harness) -----------------------------

/// Per-node digest over the whole run.
struct SeriesNodeSummary {
  std::string name;
  /// Peak accumulated inconsistency over all windows.
  double peak_accumulated = 0.0;
  /// Tightest headroom fraction over all windows (1.0 = never charged).
  double min_headroom_frac = 1.0;
  /// Window index where the minimum occurred.
  size_t min_window = 0;
  double limit_at_min = 0.0;
  /// Bound utilization at the node's tightest observation,
  /// 1 - min_headroom_frac (0 when the node was never charged). Defined
  /// from the minimum-headroom sample — not peak_accumulated / limit —
  /// because a node can be charged under several limits (the root sees
  /// both TIL and TEL checks) and mixing their extrema misleads.
  double utilization = 0.0;
  int64_t charges = 0;
};

/// Whole-run digest: steady-state window via MSER-5 over the throughput
/// series, tightest epsilon headroom, per-node utilization.
struct SeriesSummary {
  size_t total_windows = 0;
  /// MSER-5 outcome over the committed-per-second series.
  bool steady_state_found = false;
  size_t warmup_windows = 0;
  /// Means over the steady-state windows (over all windows when MSER
  /// failed — the caller is told via steady_state_found).
  double steady_throughput = 0.0;
  double steady_abort_rate = 0.0;
  double steady_mean_mpl = 0.0;
  double steady_mean_op_latency_ms = 0.0;
  /// True when any bounded node was charged in any window.
  bool headroom_observed = false;
  /// The run's tightest moment: node and window of the global minimum
  /// headroom fraction.
  std::string tightest_node;
  size_t tightest_window = 0;
  double tightest_headroom_frac = 1.0;
  double tightest_limit = 0.0;
  /// Any window saw accumulated > limit — a bound violation the engine
  /// should have prevented; tools/esr_series exits 2 on this.
  bool negative_headroom = false;
  /// Streaming certification rode along with the series (any window's
  /// certified_through_s >= 0).
  bool certification_observed = false;
  /// Final watermark (the last window's reading; the watermark is
  /// monotone, so also the run maximum).
  double certified_through_s = 0.0;
  /// The watermark stopped short of the last window boundary — a
  /// violation froze it mid-run.
  bool certification_froze = false;
  std::vector<SeriesNodeSummary> nodes;
};

SeriesSummary SummarizeSeries(const RunSeries& series);

/// Writes `summary` as JSON (the esr_series --json output).
void WriteSeriesSummaryJson(const SeriesSummary& summary, std::ostream& out);

// -- Gauges -----------------------------------------------------------------

/// Publishes one `headroom.min_frac.<node>` gauge per charged node — the
/// minimum headroom fraction over all of `series`'s windows — plus
/// `headroom.min_frac` for the global minimum across nodes. The threaded
/// server calls this per sampling tick with its rolling series so
/// /metrics scrapes see live epsilon headroom.
void ExportHeadroomGauges(const RunSeries& series, MetricRegistry* metrics);

// -- Demo -------------------------------------------------------------------

/// Deterministic synthetic series — a ramp-up followed by steady state —
/// exercising every analysis path without running a simulation. With
/// `with_violation`, one steady window carries a negative headroom
/// fraction (esr_series --demo-negative, and the exit-code test).
RunSeries BuildDemoSeries(bool with_violation);

}  // namespace esr

#endif  // ESR_OBS_SERIES_H_
