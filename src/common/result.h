#ifndef ESR_COMMON_RESULT_H_
#define ESR_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace esr {

/// A value-or-Status holder, the return type of fallible operations that
/// produce a value (e.g. a committed read). Mirrors arrow::Result /
/// absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit from value: `return 42;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status: `return Status::Aborted(...);`.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its status.
#define ESR_ASSIGN_OR_RETURN(lhs, expr)     \
  auto ESR_CONCAT_(res_, __LINE__) = (expr);  \
  if (!ESR_CONCAT_(res_, __LINE__).ok())      \
    return ESR_CONCAT_(res_, __LINE__).status(); \
  lhs = std::move(ESR_CONCAT_(res_, __LINE__)).value()

#define ESR_CONCAT_INNER_(a, b) a##b
#define ESR_CONCAT_(a, b) ESR_CONCAT_INNER_(a, b)

}  // namespace esr

#endif  // ESR_COMMON_RESULT_H_
