#include "common/timestamp.h"

#include <cstdio>

namespace esr {

std::string Timestamp::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%lld@%u",
                static_cast<long long>(micros), site);
  return buf;
}

Timestamp TimestampGenerator::Next(int64_t now_micros) {
  int64_t micros = now_micros;
  if (micros <= last_micros_) micros = last_micros_ + 1;
  last_micros_ = micros;
  return Timestamp{micros, site_};
}

}  // namespace esr
