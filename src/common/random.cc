#include "common/random.h"

#include <cassert>
#include <cmath>

namespace esr {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextU64());  // full range
  // Rejection-free modulo is fine here: range << 2^64 for all our uses,
  // so the bias is negligible for simulation purposes.
  return lo + static_cast<int64_t>(NextU64() % range);
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Exponential(double mean) {
  assert(mean > 0.0);
  double u = NextDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace esr
