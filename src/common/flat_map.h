#ifndef ESR_COMMON_FLAT_MAP_H_
#define ESR_COMMON_FLAT_MAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

namespace esr {

/// Open-addressing hash map with linear probing, tuned for the simulator's
/// hot paths (transaction charge/observe tracking, lock tables, the
/// transaction registry). Differences from std::unordered_map that matter
/// here:
///
///  - One contiguous slot array (capacity is a power of two); a lookup is
///    a mask, one cache line touch, and a short linear probe — no bucket
///    pointer chase, no per-node allocation.
///  - Erase uses backward-shift deletion, so there are no tombstones and
///    probe chains never grow stale. Erase moves *other* elements in the
///    same probe cluster, which is stricter than unordered_map: never
///    hold a reference to any element across an Erase, and values must
///    tolerate being moved (insertion may also move them on growth).
///  - Reserve() pre-sizes to the expected working set; with a correct hint
///    the map never rehashes mid-run (the simulator sizes from
///    ObjectStoreOptions / MPL hints).
///
/// Key must be cheap to copy and hashable via std::hash (or the Hash
/// parameter). Value must be movable but need not be default-constructible
/// (operator[] additionally requires default construction). Not
/// thread-safe; callers latch.
template <typename Key, typename T, typename Hash = std::hash<Key>>
class FlatMap {
 public:
  FlatMap() = default;

  /// Pre-sizes so that `expected` elements fit without rehashing (load
  /// factor is kept at or below 7/8).
  void Reserve(size_t expected) {
    size_t needed = 16;
    while (needed - needed / 8 < expected) needed <<= 1;
    if (needed > slots_.size()) Rehash(needed);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return slots_.size(); }

  void Clear() {
    if (size_ == 0) return;
    for (Slot& s : slots_) s.value.reset();
    size_ = 0;
  }

  /// Returns the value for `key`, default-constructing it if absent.
  T& operator[](const Key& key) {
    MaybeGrow();
    Slot& slot = slots_[ProbeFor(key)];
    if (!slot.value.has_value()) {
      slot.key = key;
      slot.value.emplace();
      ++size_;
    }
    return *slot.value;
  }

  /// Inserts `value` under `key` if absent; returns (pointer, inserted).
  std::pair<T*, bool> TryEmplace(const Key& key, T value) {
    MaybeGrow();
    Slot& slot = slots_[ProbeFor(key)];
    if (slot.value.has_value()) return {&*slot.value, false};
    slot.key = key;
    slot.value.emplace(std::move(value));
    ++size_;
    return {&*slot.value, true};
  }

  /// Returns the value for `key`, or nullptr if absent.
  T* Find(const Key& key) {
    if (slots_.empty()) return nullptr;
    Slot& slot = slots_[ProbeFor(key)];
    return slot.value.has_value() ? &*slot.value : nullptr;
  }
  const T* Find(const Key& key) const {
    return const_cast<FlatMap*>(this)->Find(key);
  }

  bool Contains(const Key& key) const { return Find(key) != nullptr; }

  /// Removes `key` if present; returns whether anything was removed.
  /// Backward-shift deletion: elements later in the same probe cluster
  /// are moved, invalidating references to them.
  bool Erase(const Key& key) {
    if (slots_.empty()) return false;
    size_t hole = ProbeFor(key);
    if (!slots_[hole].value.has_value()) return false;
    const size_t mask = slots_.size() - 1;
    size_t next = (hole + 1) & mask;
    while (slots_[next].value.has_value()) {
      const size_t home = Hash{}(slots_[next].key) & mask;
      // Shift `next` into the hole unless its home lies strictly between
      // the hole and `next` in circular probe order (then it is already
      // as close to home as it can get).
      const bool in_place = ((next - home) & mask) < ((next - hole) & mask);
      if (!in_place) {
        slots_[hole].key = slots_[next].key;
        slots_[hole].value = std::move(slots_[next].value);
        hole = next;
      }
      next = (next + 1) & mask;
    }
    slots_[hole].value.reset();
    --size_;
    return true;
  }

  /// Calls fn(key, value) for every element, in unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (Slot& s : slots_) {
      if (s.value.has_value()) fn(s.key, *s.value);
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.value.has_value()) fn(s.key, *s.value);
    }
  }

 private:
  struct Slot {
    Key key{};
    std::optional<T> value;
  };

  // The user hash is used raw — for libstdc++ integer keys that is the
  // identity, which is deliberate: the simulator keys these maps by
  // *dense* ObjectIds/TxnIds, and identity placement gives single-probe
  // lookups and inserts (micro_flat_map: ~3x unordered_map on the
  // txn-churn shape; a Fibonacci finalizer was tried and cost 2.5x there).
  // The flip side, measured by the bench's adversarial lock-table kernel:
  // backward-shift erase scans the whole probe cluster, so hundreds of
  // simultaneously *live* consecutive keys would degrade erase badly.
  // Live sets here are bounded by MPL x ops-per-txn (~120, clusters no
  // longer than the ~20-object hot set), so the dense regime stays the
  // fast one. Revisit if a caller ever keeps 100s of adjacent keys live.
  //
  // Index of the slot holding `key`, or of the empty slot where it would go.
  size_t ProbeFor(const Key& key) const {
    const size_t mask = slots_.size() - 1;
    size_t i = Hash{}(key) & mask;
    while (slots_[i].value.has_value() && !(slots_[i].key == key)) {
      i = (i + 1) & mask;
    }
    return i;
  }

  void MaybeGrow() {
    if (slots_.empty()) {
      Rehash(16);
    } else if (size_ + 1 > slots_.size() - slots_.size() / 8) {
      Rehash(slots_.size() * 2);
    }
  }

  void Rehash(size_t new_capacity) {
    assert((new_capacity & (new_capacity - 1)) == 0);
    std::vector<Slot> old = std::move(slots_);
    slots_ = std::vector<Slot>(new_capacity);
    const size_t mask = new_capacity - 1;
    for (Slot& s : old) {
      if (!s.value.has_value()) continue;
      size_t i = Hash{}(s.key) & mask;
      while (slots_[i].value.has_value()) i = (i + 1) & mask;
      slots_[i].key = s.key;
      slots_[i].value = std::move(s.value);
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
};

}  // namespace esr

#endif  // ESR_COMMON_FLAT_MAP_H_
