#ifndef ESR_COMMON_STATUS_H_
#define ESR_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace esr {

/// Error category carried by `Status`.
///
/// The library does not use exceptions (per the project style); every
/// fallible public operation returns a `Status` or a `Result<T>`.
enum class StatusCode : uint8_t {
  kOk = 0,
  /// The transaction was aborted by the concurrency-control layer and must
  /// be resubmitted with a fresh timestamp (paper: abort + immediate
  /// restart for late operations).
  kAborted = 1,
  /// A hierarchical inconsistency bound (OIL/OEL, group limit, TIL/TEL)
  /// would be exceeded; the transaction is aborted.
  kBoundViolation = 2,
  /// The caller passed an argument outside the valid domain.
  kInvalidArgument = 3,
  /// A referenced entity (object, group, transaction) does not exist.
  kNotFound = 4,
  /// The operation is not legal in the current state (e.g. an op on a
  /// transaction that already committed).
  kFailedPrecondition = 5,
  /// An internal invariant was broken; indicates a bug.
  kInternal = 6,
};

/// Human-readable name of a status code ("OK", "Aborted", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Value-semantic result of a fallible operation: a code plus an optional
/// message. Modeled after the Status idiom used in Arrow/RocksDB.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status BoundViolation(std::string msg) {
    return Status(StatusCode::kBoundViolation, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define ESR_RETURN_NOT_OK(expr)           \
  do {                                    \
    ::esr::Status _st = (expr);           \
    if (!_st.ok()) return _st;            \
  } while (false)

}  // namespace esr

#endif  // ESR_COMMON_STATUS_H_
