#ifndef ESR_COMMON_METRICS_H_
#define ESR_COMMON_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace esr {

/// A monotonically increasing event counter.
class Counter {
 public:
  void Increment(int64_t delta = 1) { value_ += delta; }
  int64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  int64_t value_ = 0;
};

/// Streaming summary of a series of samples (count/mean/min/max/stddev via
/// Welford), plus a coarse log2-bucketed histogram for tail inspection.
class Histogram {
 public:
  void Record(double sample);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double variance() const;
  double stddev() const;

  /// Approximate percentile from the log2 buckets (upper bound of the
  /// bucket containing the requested rank); good enough for reporting.
  double ApproximatePercentile(double p) const;

  void Reset();

  std::string ToString() const;

 private:
  static constexpr int kNumBuckets = 64;

  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  int64_t buckets_[kNumBuckets] = {};
};

/// Named registry of counters and histograms used by the transaction
/// engine and the simulator; snapshots feed the benchmark tables.
class MetricRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  int64_t CounterValue(const std::string& name) const;

  void Reset();

  /// All counters as (name, value), sorted by name.
  std::vector<std::pair<std::string, int64_t>> CounterSnapshot() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace esr

#endif  // ESR_COMMON_METRICS_H_
