#ifndef ESR_COMMON_METRICS_H_
#define ESR_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace esr {

/// A monotonically increasing event counter. Increments are relaxed
/// atomics, so counters may be bumped concurrently (the threaded-server
/// path) without a registry lock.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A last-value-wins instantaneous measurement (active transactions,
/// minimum epsilon headroom, queue depth). Stores/loads are relaxed
/// atomics so a background sampler can publish while a scraper reads.
class Gauge {
 public:
  void Set(double value) {
    bits_.store(Encode(value), std::memory_order_relaxed);
  }
  double value() const { return Decode(bits_.load(std::memory_order_relaxed)); }
  void Reset() { Set(0.0); }

 private:
  // std::atomic<double> lacks a guaranteed lock-free path on some
  // targets; a bit-cast through uint64_t always has one.
  static uint64_t Encode(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    return bits;
  }
  static double Decode(uint64_t bits) {
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::atomic<uint64_t> bits_{0};
};

/// Percentile summary of a histogram (interpolated; see
/// Histogram::ApproximatePercentile).
struct PercentileSummary {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

/// Streaming summary of a series of samples (count/mean/min/max/stddev via
/// Welford), plus a two-level bucketed histogram — 64 log2 major buckets,
/// each split into 16 linear sub-buckets — giving percentiles with
/// bounded relative error (~1/16 of the value) instead of the up-to-2x
/// error of plain log2 buckets.
///
/// NOT thread-safe: one writer at a time (use MetricRegistry::RecordSample
/// for the mutex-guarded multi-writer path).
class Histogram {
 public:
  void Record(double sample);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double variance() const;
  double stddev() const;

  /// Percentile estimate by exact rank over the sub-buckets with linear
  /// interpolation inside the containing sub-bucket, clamped to the
  /// observed [min, max]. Error is bounded by one sub-bucket width
  /// (1/16 of the bucket's lower bound).
  double ApproximatePercentile(double p) const;

  /// p50/p90/p99/p999 in one pass-friendly struct (reporting convenience).
  PercentileSummary Percentiles() const;

  /// Folds `other` into this histogram (parallel Welford combination plus
  /// bucket-wise addition) — used to merge per-client simulator
  /// histograms into one run-level distribution.
  ///
  /// Like Record, Merge is NOT thread-safe (see class comment): both the
  /// destination and `other` must be quiescent. The bench worker pool
  /// honors this by never touching a shared Histogram from a worker —
  /// each simulator run owns its histograms, and all merging into the
  /// averaged result happens on the coordinating thread after the workers
  /// have joined (enforced by a coordinator-thread check in
  /// bench::Sweep::Run).
  void Merge(const Histogram& other);

  void Reset();

  std::string ToString() const;

 private:
  static constexpr int kNumBuckets = 64;
  static constexpr int kSubBuckets = 16;
  static constexpr int kTotalBuckets = kNumBuckets * kSubBuckets;

  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  int64_t buckets_[kTotalBuckets] = {};
};

/// Named registry of counters and histograms used by the transaction
/// engine and the simulator; snapshots feed the benchmark tables and the
/// obs/ exporters.
///
/// Thread-safety contract: the registry map itself is mutex-guarded, so
/// concurrent `counter(name)` / `histogram(name)` lookups (including
/// first-use creation) are safe, and Counter increments are atomic.
/// Histogram recording through the returned reference is single-writer;
/// concurrent recorders must go through RecordSample(), which holds the
/// registry mutex across the write.
class MetricRegistry {
 public:
  /// Returns (creating on first use) a named counter. The reference stays
  /// valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  /// Returns (creating on first use) a named histogram. Recording through
  /// this reference is single-writer; see class comment.
  Histogram& histogram(const std::string& name);
  /// Returns (creating on first use) a named gauge. Sets/reads through
  /// the reference are atomic, like Counter.
  Gauge& gauge(const std::string& name);

  /// Const lookups that never default-construct an entry; nullptr when
  /// the name was never registered.
  const Counter* FindCounter(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;

  int64_t CounterValue(const std::string& name) const;

  /// Mutex-guarded histogram record for multi-threaded writers (the
  /// threaded-server client path).
  void RecordSample(const std::string& name, double sample);

  void Reset();

  /// All counters as (name, value), sorted by name.
  std::vector<std::pair<std::string, int64_t>> CounterSnapshot() const;

  /// All gauges as (name, value), sorted by name.
  std::vector<std::pair<std::string, double>> GaugeSnapshot() const;

  /// All histograms as (name, copy), sorted by name. Copies are cheap
  /// (few KB) and decouple the reader from later recording.
  std::vector<std::pair<std::string, Histogram>> HistogramSnapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace esr

#endif  // ESR_COMMON_METRICS_H_
