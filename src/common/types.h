#ifndef ESR_COMMON_TYPES_H_
#define ESR_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace esr {

/// Identifier of a database object (the paper's data items, e.g. bank
/// account balances).
using ObjectId = uint32_t;

/// Value stored in an object. The paper's state spaces are numeric metric
/// spaces (dollar amounts, seat counts), so a signed 64-bit integer with
/// distance(u, v) = |u - v| covers them exactly.
using Value = int64_t;

/// Server-assigned transaction identifier; unique per server lifetime.
using TxnId = uint64_t;

inline constexpr TxnId kInvalidTxnId = 0;
inline constexpr ObjectId kInvalidObjectId =
    std::numeric_limits<ObjectId>::max();

/// An epsilon transaction is either a read-only query ET (may import
/// inconsistency, bounded by TIL/OIL/group limits) or a consistent update
/// ET (may export inconsistency, bounded by TEL/OEL/group limits). The
/// paper's evaluation runs query ETs against consistent update ETs.
enum class TxnType : uint8_t {
  kQuery = 0,
  kUpdate = 1,
};

/// Amount of inconsistency, measured by the metric-space distance function
/// (absolute value difference for numeric states). Non-negative.
using Inconsistency = double;

/// A bound that is effectively "no limit"; used when a level of the
/// hierarchy leaves a node unconstrained (e.g. OIL held high in Fig. 7).
inline constexpr Inconsistency kUnbounded =
    std::numeric_limits<double>::infinity();

}  // namespace esr

#endif  // ESR_COMMON_TYPES_H_
