#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace esr {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};
std::mutex g_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal_logging
}  // namespace esr
