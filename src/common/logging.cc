#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

namespace esr {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};
std::atomic<LogSink*> g_sink{nullptr};

int64_t WallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// The default sink: one formatted line per record to stderr, serialized
/// by a mutex so concurrent threads never interleave.
class StderrLogSink : public LogSink {
 public:
  void Write(const LogRecord& record) override {
    // 2026-08-06T12:34:56.789012Z, UTC.
    const std::time_t secs =
        static_cast<std::time_t>(record.wall_micros / 1'000'000);
    const int64_t sub_micros = record.wall_micros % 1'000'000;
    std::tm tm{};
    gmtime_r(&secs, &tm);
    char when[64];
    std::snprintf(when, sizeof(when),
                  "%04d-%02d-%02dT%02d:%02d:%02d.%06lldZ",
                  tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                  tm.tm_min, tm.tm_sec, static_cast<long long>(sub_micros));
    std::lock_guard<std::mutex> lock(mu_);
    std::fprintf(stderr, "[%s %s t%u %s:%d] %.*s\n",
                 LogLevelName(record.level), when, record.thread_id,
                 record.file, record.line,
                 static_cast<int>(record.message.size()),
                 record.message.data());
    std::fflush(stderr);
  }

 private:
  std::mutex mu_;
};

StderrLogSink& DefaultSink() {
  static StderrLogSink* sink = new StderrLogSink();
  return *sink;
}

LogSink& ActiveSink() {
  LogSink* sink = g_sink.load(std::memory_order_acquire);
  return sink != nullptr ? *sink : DefaultSink();
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

LogSink* SetLogSink(LogSink* sink) {
  return g_sink.exchange(sink, std::memory_order_acq_rel);
}

void CapturingLogSink::Write(const LogRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(Captured{record.level, record.file, record.line,
                              record.wall_micros, record.thread_id,
                              std::string(record.message)});
}

std::vector<CapturingLogSink::Captured> CapturingLogSink::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

size_t CapturingLogSink::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

void CapturingLogSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
}

namespace internal_logging {

uint32_t CurrentThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed) + 1;
  return id;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  const std::string message = stream_.str();
  LogRecord record;
  record.level = level_;
  record.file = file_;
  record.line = line_;
  record.wall_micros = WallMicros();
  record.thread_id = CurrentThreadId();
  record.message = message;
  ActiveSink().Write(record);
  if (level_ == LogLevel::kFatal) {
    // A fatal line must reach stderr even when a test sink is installed,
    // both for humans and for death-test matchers.
    if (g_sink.load(std::memory_order_acquire) != nullptr) {
      DefaultSink().Write(record);
    }
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace esr
