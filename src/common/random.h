#ifndef ESR_COMMON_RANDOM_H_
#define ESR_COMMON_RANDOM_H_

#include <cstdint>

namespace esr {

/// Deterministic pseudo-random generator (xoshiro256**), seeded via
/// SplitMix64. Every stochastic component of the library (workload
/// generation, latency sampling, clock skew) draws from an explicitly
/// seeded instance so that experiments are exactly reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  /// Re-seeds the generator; identical seeds produce identical streams.
  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean);

  /// Standard normal via Box-Muller.
  double Normal(double mean, double stddev);

  /// Forks an independent generator whose stream is a deterministic
  /// function of this one's state; used to give each simulated component
  /// its own stream.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace esr

#endif  // ESR_COMMON_RANDOM_H_
