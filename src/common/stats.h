#ifndef ESR_COMMON_STATS_H_
#define ESR_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace esr {

/// Two-sided 90% Student-t critical value t_{0.95, df} (df >= 1). Exact
/// table through df = 30, 1.645 (the normal limit) beyond. The bench
/// harness reports per-point confidence intervals across seeds with it,
/// mirroring the paper's "90% confidence intervals within +/-3%".
double StudentT90(size_t df);

/// Half-width of the 90% confidence interval of the mean of `samples`
/// (t * s / sqrt(n)); 0 for fewer than two samples.
double Ci90HalfWidth(const std::vector<double>& samples);

/// Outcome of MSER-5 warmup truncation over a per-window series.
struct MserResult {
  /// Whether the heuristic produced a usable truncation point. False when
  /// the series is too short (fewer than kMinBatches batches) or the
  /// minimum lies in the unstable back half of the series.
  bool ok = false;
  /// Truncation point in *windows* (samples of the input series).
  size_t truncation_windows = 0;
  /// Number of size-kBatch batches the series was folded into.
  size_t batches = 0;
  /// The minimized MSER statistic (variance of the retained batch means
  /// over the square of their count).
  double statistic = 0.0;
};

/// MSER-5 (White 1997): folds `series` into batches of `batch` samples
/// (default 5), then picks the truncation point d minimizing
/// sum((x_i - mean_d)^2) / (n - d)^2 over the retained batch means.
/// Candidates are restricted to the front half of the batches, the
/// standard guard against the statistic's endpoint instability; a minimum
/// at the last allowed candidate marks the heuristic as failed (the
/// series never settled). Deterministic, allocation-light, O(n^2) in the
/// batch count (tiny: seconds of 1 s windows).
MserResult Mser5Truncation(const std::vector<double>& series,
                           size_t batch = 5);

/// Minimum batches MSER-5 needs before it trusts itself.
inline constexpr size_t kMserMinBatches = 4;

}  // namespace esr

#endif  // ESR_COMMON_STATS_H_
