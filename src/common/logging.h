#ifndef ESR_COMMON_LOGGING_H_
#define ESR_COMMON_LOGGING_H_

#include <cstdint>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace esr {

/// Severity of a log line; lines below the global threshold are dropped.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

const char* LogLevelName(LogLevel level);

/// Sets the global threshold; defaults to kWarning so library internals are
/// silent in tests and benches unless asked for.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// One structured log line as handed to a sink: severity, source
/// location, wall-clock microseconds since the Unix epoch, a small
/// process-unique id of the emitting thread, and the formatted message.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  const char* file = "";
  int line = 0;
  int64_t wall_micros = 0;
  uint32_t thread_id = 0;
  std::string_view message;
};

/// Destination for emitted log records. Implementations must be
/// thread-safe: records arrive from any thread, already filtered by the
/// global level threshold.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(const LogRecord& record) = 0;
};

/// Replaces the process-wide sink; nullptr restores the default stderr
/// sink. Returns the previous sink (nullptr when the default was active)
/// so tests can restore it. The caller keeps ownership of the sink, which
/// must outlive its installation.
LogSink* SetLogSink(LogSink* sink);

/// Test sink: retains every record (with the message copied) for
/// assertions on log output.
class CapturingLogSink : public LogSink {
 public:
  struct Captured {
    LogLevel level;
    std::string file;
    int line;
    int64_t wall_micros;
    uint32_t thread_id;
    std::string message;
  };

  void Write(const LogRecord& record) override;

  std::vector<Captured> records() const;
  size_t count() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  std::vector<Captured> records_;
};

namespace internal_logging {

/// Small process-unique id of the calling thread (1, 2, ... in first-log
/// order); stable for the thread's lifetime.
uint32_t CurrentThreadId();

/// Stream-style one-shot logger; emits on destruction. kFatal aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Discards everything streamed into it; used for disabled levels.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

#define ESR_LOG(level)                                                  \
  if (::esr::LogLevel::level < ::esr::GetLogLevel()) {                  \
  } else                                                                \
    ::esr::internal_logging::LogMessage(::esr::LogLevel::level,         \
                                        __FILE__, __LINE__)             \
        .stream()

/// Fatal-if-false invariant check, active in all build modes.
#define ESR_CHECK(cond)                                                  \
  if (cond) {                                                            \
  } else                                                                 \
    ::esr::internal_logging::LogMessage(::esr::LogLevel::kFatal,         \
                                        __FILE__, __LINE__)              \
            .stream()                                                    \
        << "Check failed: " #cond " "

}  // namespace esr

#endif  // ESR_COMMON_LOGGING_H_
