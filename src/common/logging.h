#ifndef ESR_COMMON_LOGGING_H_
#define ESR_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace esr {

/// Severity of a log line; lines below the global threshold are dropped.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the global threshold; defaults to kWarning so library internals are
/// silent in tests and benches unless asked for.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style one-shot logger; emits on destruction. kFatal aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Discards everything streamed into it; used for disabled levels.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

#define ESR_LOG(level)                                                  \
  if (::esr::LogLevel::level < ::esr::GetLogLevel()) {                  \
  } else                                                                \
    ::esr::internal_logging::LogMessage(::esr::LogLevel::level,         \
                                        __FILE__, __LINE__)             \
        .stream()

/// Fatal-if-false invariant check, active in all build modes.
#define ESR_CHECK(cond)                                                  \
  if (cond) {                                                            \
  } else                                                                 \
    ::esr::internal_logging::LogMessage(::esr::LogLevel::kFatal,         \
                                        __FILE__, __LINE__)              \
            .stream()                                                    \
        << "Check failed: " #cond " "

}  // namespace esr

#endif  // ESR_COMMON_LOGGING_H_
