#ifndef ESR_COMMON_TIMESTAMP_H_
#define ESR_COMMON_TIMESTAMP_H_

#include <compare>
#include <cstdint>
#include <string>

namespace esr {

/// Identifier of a client site (workstation) in the cluster. The paper's
/// prototype appends the site id to the local clock reading so that
/// timestamps from different sites are unique.
using SiteId = uint32_t;

/// A transaction timestamp: microseconds on the site's *corrected* local
/// clock, disambiguated by the site id. Total order is lexicographic
/// (micros, site), exactly the "append the site-id" technique of Sec. 6.
struct Timestamp {
  int64_t micros = 0;
  SiteId site = 0;

  /// The smallest representable timestamp; older than any real one.
  static Timestamp Min() { return Timestamp{INT64_MIN, 0}; }
  /// The largest representable timestamp; newer than any real one.
  static Timestamp Max() { return Timestamp{INT64_MAX, UINT32_MAX}; }

  friend auto operator<=>(const Timestamp&, const Timestamp&) = default;

  std::string ToString() const;
};

/// Issues strictly increasing timestamps for one site.
///
/// The caller supplies the site's corrected clock reading (virtual time +
/// residual skew in the simulation, wall time in a real deployment); the
/// generator bumps it by one microsecond if the clock has not advanced
/// since the previous issue, so timestamps from a site never repeat.
class TimestampGenerator {
 public:
  explicit TimestampGenerator(SiteId site) : site_(site) {}

  /// Returns a timestamp strictly greater than any previously issued by
  /// this generator, with `now_micros` as the base clock reading.
  Timestamp Next(int64_t now_micros);

  SiteId site() const { return site_; }

 private:
  SiteId site_;
  int64_t last_micros_ = INT64_MIN;
};

}  // namespace esr

#endif  // ESR_COMMON_TIMESTAMP_H_
