#include "common/stats.h"

#include <cmath>

namespace esr {

double StudentT90(size_t df) {
  // t_{0.95, df}, two-sided 90%: Abramowitz & Stegun table 26.10.
  static constexpr double kTable[] = {
      0.0,                                                       // df 0 pad
      6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860,    // 1..8
      1.833, 1.812, 1.796, 1.782, 1.771, 1.761, 1.753, 1.746,    // 9..16
      1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711,    // 17..24
      1.708, 1.706, 1.703, 1.701, 1.699, 1.697,                  // 25..30
  };
  if (df == 0) return 0.0;
  if (df < sizeof(kTable) / sizeof(kTable[0])) return kTable[df];
  return 1.645;
}

double Ci90HalfWidth(const std::vector<double>& samples) {
  const size_t n = samples.size();
  if (n < 2) return 0.0;
  double mean = 0.0;
  for (const double s : samples) mean += s;
  mean /= static_cast<double>(n);
  double m2 = 0.0;
  for (const double s : samples) m2 += (s - mean) * (s - mean);
  const double stddev = std::sqrt(m2 / static_cast<double>(n - 1));
  return StudentT90(n - 1) * stddev / std::sqrt(static_cast<double>(n));
}

MserResult Mser5Truncation(const std::vector<double>& series, size_t batch) {
  MserResult result;
  if (batch == 0) return result;
  const size_t batches = series.size() / batch;
  result.batches = batches;
  if (batches < kMserMinBatches) return result;

  std::vector<double> means(batches);
  for (size_t b = 0; b < batches; ++b) {
    double sum = 0.0;
    for (size_t i = 0; i < batch; ++i) sum += series[b * batch + i];
    means[b] = sum / static_cast<double>(batch);
  }

  // Suffix sums let each candidate's mean and sum of squares come from
  // two subtractions instead of a rescan.
  double sum = 0.0, sum_sq = 0.0;
  for (const double m : means) {
    sum += m;
    sum_sq += m * m;
  }

  // Candidates d = 0 .. batches/2: dropping more than half the series is
  // the classic sign that MSER is chasing endpoint noise, not warmup.
  const size_t max_d = batches / 2;
  size_t best_d = 0;
  double best_stat = 0.0;
  double prefix_sum = 0.0, prefix_sq = 0.0;
  for (size_t d = 0; d <= max_d; ++d) {
    const double n_d = static_cast<double>(batches - d);
    const double rest_sum = sum - prefix_sum;
    const double rest_sq = sum_sq - prefix_sq;
    const double mean_d = rest_sum / n_d;
    const double ss = rest_sq - n_d * mean_d * mean_d;
    const double stat = (ss > 0.0 ? ss : 0.0) / (n_d * n_d);
    if (d == 0 || stat < best_stat) {
      best_stat = stat;
      best_d = d;
    }
    if (d < max_d) {
      prefix_sum += means[d];
      prefix_sq += means[d] * means[d];
    }
  }
  // A minimum sitting on the candidate boundary means the statistic was
  // still falling when we stopped looking: the run never settled.
  if (best_d == max_d && max_d > 0) return result;

  result.ok = true;
  result.truncation_windows = best_d * batch;
  result.statistic = best_stat;
  return result;
}

}  // namespace esr
