#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace esr {
namespace {

// Index of the log2 bucket for a non-negative sample.
int BucketIndex(double sample) {
  if (sample < 1.0) return 0;
  int idx = 1 + static_cast<int>(std::log2(sample));
  return std::min(idx, 63);
}

}  // namespace

void Histogram::Record(double sample) {
  ++count_;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
  if (count_ == 1) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++buckets_[BucketIndex(std::max(sample, 0.0))];
}

double Histogram::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double Histogram::stddev() const { return std::sqrt(variance()); }

double Histogram::ApproximatePercentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const int64_t rank = static_cast<int64_t>(p * static_cast<double>(count_));
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen > rank) {
      return i == 0 ? 1.0 : std::pow(2.0, i);
    }
  }
  return max_;
}

void Histogram::Reset() { *this = Histogram(); }

std::string Histogram::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%lld mean=%.3f min=%.3f max=%.3f stddev=%.3f",
                static_cast<long long>(count_), mean(), min(), max(),
                stddev());
  return buf;
}

int64_t MetricRegistry::CounterValue(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

void MetricRegistry::Reset() {
  for (auto& [name, c] : counters_) c.Reset();
  for (auto& [name, h] : histograms_) h.Reset();
}

std::vector<std::pair<std::string, int64_t>> MetricRegistry::CounterSnapshot()
    const {
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c.value());
  return out;
}

}  // namespace esr
