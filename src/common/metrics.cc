#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace esr {
namespace {

constexpr int kNumBuckets = 64;
constexpr int kSubBuckets = 16;

// Major (log2) bucket for a non-negative sample: bucket 0 covers [0, 1),
// bucket m >= 1 covers [2^(m-1), 2^m).
int MajorIndex(double sample) {
  if (sample < 1.0) return 0;
  int idx = 1 + static_cast<int>(std::log2(sample));
  return std::min(idx, kNumBuckets - 1);
}

// Lower bound and width of one linear sub-bucket.
void SubBucketBounds(int major, int sub, double* lo, double* width) {
  if (major == 0) {
    *width = 1.0 / kSubBuckets;
    *lo = sub * *width;
    return;
  }
  const double base = std::pow(2.0, major - 1);
  *width = base / kSubBuckets;
  *lo = base + sub * *width;
}

int FlatIndex(double sample) {
  const int major = MajorIndex(sample);
  double lo;
  double width;
  SubBucketBounds(major, 0, &lo, &width);
  int sub = static_cast<int>((sample - lo) / width);
  sub = std::clamp(sub, 0, kSubBuckets - 1);
  return major * kSubBuckets + sub;
}

}  // namespace

void Histogram::Record(double sample) {
  ++count_;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
  if (count_ == 1) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++buckets_[FlatIndex(std::max(sample, 0.0))];
}

double Histogram::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double Histogram::stddev() const { return std::sqrt(variance()); }

double Histogram::ApproximatePercentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // 0-based fractional target rank; walk the sub-buckets to the one
  // containing it and interpolate linearly inside.
  const double target = p * static_cast<double>(count_ - 1);
  int64_t seen = 0;
  for (int i = 0; i < kTotalBuckets; ++i) {
    const int64_t n = buckets_[i];
    if (n == 0) continue;
    if (static_cast<double>(seen + n) > target) {
      double lo;
      double width;
      SubBucketBounds(i / kSubBuckets, i % kSubBuckets, &lo, &width);
      const double within =
          (target - static_cast<double>(seen) + 0.5) /
          static_cast<double>(n);
      const double value = lo + std::clamp(within, 0.0, 1.0) * width;
      return std::clamp(value, min_, max_);
    }
    seen += n;
  }
  return max_;
}

PercentileSummary Histogram::Percentiles() const {
  return PercentileSummary{
      ApproximatePercentile(0.50), ApproximatePercentile(0.90),
      ApproximatePercentile(0.99), ApproximatePercentile(0.999)};
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  // Chan's parallel combination of the Welford moments.
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  for (int i = 0; i < kTotalBuckets; ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::Reset() { *this = Histogram(); }

std::string Histogram::ToString() const {
  const PercentileSummary p = Percentiles();
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "count=%lld mean=%.3f min=%.3f max=%.3f stddev=%.3f "
                "p50=%.3f p99=%.3f",
                static_cast<long long>(count_), mean(), min(), max(),
                stddev(), p.p50, p.p99);
  return buf;
}

Counter& MetricRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_[name];
}

Histogram& MetricRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return histograms_[name];
}

Gauge& MetricRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_[name];
}

const Counter* MetricRegistry::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Histogram* MetricRegistry::FindHistogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

const Gauge* MetricRegistry::FindGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

int64_t MetricRegistry::CounterValue(const std::string& name) const {
  const Counter* c = FindCounter(name);
  return c == nullptr ? 0 : c->value();
}

void MetricRegistry::RecordSample(const std::string& name, double sample) {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_[name].Record(sample);
}

void MetricRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c.Reset();
  for (auto& [name, g] : gauges_) g.Reset();
  for (auto& [name, h] : histograms_) h.Reset();
}

std::vector<std::pair<std::string, int64_t>> MetricRegistry::CounterSnapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c.value());
  return out;
}

std::vector<std::pair<std::string, double>> MetricRegistry::GaugeSnapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g.value());
  return out;
}

std::vector<std::pair<std::string, Histogram>>
MetricRegistry::HistogramSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, Histogram>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h);
  return out;
}

}  // namespace esr
