#ifndef ESR_TXN_TRANSACTION_H_
#define ESR_TXN_TRANSACTION_H_

#include <memory>
#include <vector>

#include "cc/to_policy.h"
#include "common/flat_map.h"
#include "common/timestamp.h"
#include "common/types.h"
#include "hierarchy/accumulator.h"

namespace esr {

/// Lifecycle state of an epsilon transaction at the server.
enum class TxnState : uint8_t {
  kActive = 0,
  kCommitted = 1,
  kAborted = 2,
};

/// Server-side state of one in-flight epsilon transaction (ET): identity,
/// timestamp, inconsistency accounting, read/write sets for recovery and
/// reader deregistration, and the per-object min/max needed by
/// aggregate-query inconsistency (Sec. 5.3.2).
class Transaction {
 public:
  /// Min/max values viewed by this transaction's reads of one object —
  /// the bookkeeping the paper prescribes for aggregate operations other
  /// than sum and for repeated reads of an object (Secs. 3.2.1, 5.3.2).
  struct ValueRange {
    Value min = 0;
    Value max = 0;
    Value last = 0;
    int64_t reads = 0;
  };

  Transaction(TxnId id, TxnType type, Timestamp ts,
              const GroupSchema* schema, BoundSpec bounds);

  /// Update ET that may also IMPORT inconsistency (the generalization
  /// Sec. 1 mentions but the paper's evaluation excludes): `bounds` is
  /// the export declaration (TEL at the root), `import_bounds` the
  /// import declaration its relaxed reads are charged against.
  Transaction(TxnId id, Timestamp ts, const GroupSchema* schema,
              BoundSpec bounds, BoundSpec import_bounds);

  /// Rewinds this (torn-down) transaction to a fresh kActive state under
  /// a new identity, keeping every container's capacity: the engines pool
  /// shells so steady-state Begin/Teardown stays off the allocator. Any
  /// previous life's import accumulator is dropped (plain ETs have none).
  void ResetForReuse(TxnId id, TxnType type, Timestamp ts,
                     const BoundSpec& bounds);

  /// Reuse counterpart of the import-enabled constructor.
  void ResetForReuse(TxnId id, Timestamp ts, const BoundSpec& bounds,
                     const BoundSpec& import_bounds);

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;
  Transaction(Transaction&&) = default;
  Transaction& operator=(Transaction&&) = default;

  TxnId id() const { return id_; }
  TxnType type() const { return type_; }
  Timestamp ts() const { return ts_; }
  TxnState state() const { return state_; }
  void set_state(TxnState state) { state_ = state; }

  bool is_query() const { return type_ == TxnType::kQuery; }

  /// ESR is enabled unless the transaction declared zero bounds, in which
  /// case it demands plain serializability (Sec. 2).
  bool esr_enabled() const { return !accumulator_.bounds().IsSerializable(); }

  /// True for an update ET that declared a non-zero import budget.
  bool import_enabled() const {
    return import_accumulator_ != nullptr &&
           !import_accumulator_->bounds().IsSerializable();
  }

  /// View handed to the timestamp-ordering policy.
  TxnView View() const {
    return TxnView{id_, type_, ts_, esr_enabled(), import_enabled()};
  }

  /// Import accumulator for queries, export accumulator for updates; the
  /// paper's script-I / script-E with all group levels in between.
  InconsistencyAccumulator& accumulator() { return accumulator_; }
  const InconsistencyAccumulator& accumulator() const { return accumulator_; }

  /// The separate import accumulator of an import-enabled update ET;
  /// nullptr otherwise. Queries use accumulator() for imports.
  InconsistencyAccumulator* import_accumulator() {
    return import_accumulator_.get();
  }
  const InconsistencyAccumulator* import_accumulator() const {
    return import_accumulator_.get();
  }

  /// The accumulator a relaxed READ of this transaction charges: the
  /// main one for queries, the import one for import-enabled updates.
  InconsistencyAccumulator& read_accumulator() {
    return is_query() ? accumulator_ : *import_accumulator_;
  }

  /// Points both accumulators' charge probes at the engine's headroom
  /// tracker (no-op under ESR_TRACE_DISABLED). Called by the engine right
  /// after Begin; `tracker` may be nullptr to detach.
  void AttachHeadroomTracker(NodeHeadroomTracker* tracker) {
    accumulator_.set_headroom_tracker(tracker);
    if (import_accumulator_ != nullptr) {
      import_accumulator_->set_headroom_tracker(tracker);
    }
  }

  // -- Repeated-read accounting (Sec. 3.2.1 extension) ---------------------
  /// Largest inconsistency already charged for reads of `object`; repeat
  /// reads charge only the excess over this, implementing the min/max
  /// worst-case rule instead of double-charging.
  Inconsistency ChargedFor(ObjectId object) const;
  void NoteCharged(ObjectId object, Inconsistency d);

  // -- Read/write set tracking --------------------------------------------
  /// Remembers that this (query) transaction is registered as a reader of
  /// `object`, so it can be deregistered at commit/abort. Call only when
  /// ObjectRecord::RegisterQueryReader reported a NEW registration — the
  /// object's reader list is the dedup authority, so this is a plain
  /// append (no per-read scan of the registered set).
  void NoteRegisteredRead(ObjectId object) {
    registered_reads_.push_back(object);
  }
  /// Remembers a pending write for shadow restore at abort.
  void NotePendingWrite(ObjectId object);

  const std::vector<ObjectId>& registered_reads() const {
    return registered_reads_;
  }
  const std::vector<ObjectId>& pending_writes() const {
    return pending_writes_;
  }
  bool HasPendingWrite(ObjectId object) const;

  // -- Observed value ranges ----------------------------------------------
  /// Records a value returned by a read of `object`.
  void ObserveValue(ObjectId object, Value value);
  /// Range viewed for `object`, if it was ever read.
  const ValueRange* RangeFor(ObjectId object) const;
  const FlatMap<ObjectId, ValueRange>& ranges() const { return observed_; }

  /// Pre-sizes the per-object tracking maps for an expected access-set
  /// size (the workload's transaction length), so the hot path never
  /// rehashes. Cheap to over-estimate.
  void ReserveAccessSets(size_t expected_objects) {
    charged_.Reserve(expected_objects);
    observed_.Reserve(expected_objects);
    registered_reads_.reserve(expected_objects);
    pending_writes_.reserve(expected_objects);
  }

  // -- Causal tracing -------------------------------------------------------
  /// Id of this transaction's lifetime trace span (0 when tracing was off
  /// at Begin). Engine ops and bound walks parent to it; the sim client
  /// parents its RPC spans to it across event-queue callbacks.
  uint64_t trace_span() const { return trace_span_; }
  void set_trace_span(uint64_t span) { trace_span_ = span; }

  // -- Operation statistics (feed Figs. 8, 10, 13) -------------------------
  int64_t ops_executed() const { return ops_executed_; }
  int64_t inconsistent_ops() const { return inconsistent_ops_; }
  void CountOp() { ++ops_executed_; }
  void CountInconsistentOp() { ++inconsistent_ops_; }

 private:
  /// Identity/counter/access-set reset shared by both reuse paths.
  void ResetShared(TxnId id, TxnType type, Timestamp ts);

  TxnId id_;
  TxnType type_;
  Timestamp ts_;
  TxnState state_ = TxnState::kActive;
  InconsistencyAccumulator accumulator_;
  std::unique_ptr<InconsistencyAccumulator> import_accumulator_;
  FlatMap<ObjectId, Inconsistency> charged_;
  std::vector<ObjectId> registered_reads_;
  std::vector<ObjectId> pending_writes_;
  FlatMap<ObjectId, ValueRange> observed_;
  int64_t ops_executed_ = 0;
  int64_t inconsistent_ops_ = 0;
  uint64_t trace_span_ = 0;
};

}  // namespace esr

#endif  // ESR_TXN_TRANSACTION_H_
