#include "txn/server.h"

#include "common/logging.h"
#include "mvto/mvto_manager.h"
#include "twopl/twopl_manager.h"

namespace esr {

Server::Server(const ServerOptions& options) : options_(options) {
  // The sharded engine owns one dense store slice per shard; constructing
  // the monolithic store too would double memory at millions of objects.
  if (options_.engine != EngineKind::kSharded) {
    store_ = std::make_unique<ObjectStore>(options_.store);
  }
  switch (options_.engine) {
    case EngineKind::kTimestampOrdering:
      engine_ = std::make_unique<TransactionManager>(
          store_.get(), &schema_, &metrics_, options_.divergence);
      break;
    case EngineKind::kTwoPhaseLocking:
      engine_ = std::make_unique<TwoPLManager>(
          store_.get(), &schema_, &metrics_, options_.divergence);
      break;
    case EngineKind::kMultiversion:
      engine_ = std::make_unique<MvtoManager>(options_.store, &schema_,
                                              &metrics_);
      break;
    case EngineKind::kSharded:
      engine_ = std::make_unique<ShardedEngine>(options_.sharded,
                                                options_.store, &schema_,
                                                &metrics_,
                                                options_.divergence);
      break;
  }
  ESR_CHECK(engine_ != nullptr);
}

TransactionManager& Server::txn_manager() {
  ESR_CHECK(options_.engine == EngineKind::kTimestampOrdering)
      << "txn_manager() is only available on the TO engine";
  return static_cast<TransactionManager&>(*engine_);
}

ShardedEngine* Server::sharded_engine() {
  if (options_.engine != EngineKind::kSharded) return nullptr;
  return static_cast<ShardedEngine*>(engine_.get());
}

}  // namespace esr
