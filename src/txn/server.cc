#include "txn/server.h"

#include "common/logging.h"
#include "mvto/mvto_manager.h"
#include "twopl/twopl_manager.h"

namespace esr {

Server::Server(const ServerOptions& options)
    : options_(options),
      store_(std::make_unique<ObjectStore>(options.store)) {
  switch (options_.engine) {
    case EngineKind::kTimestampOrdering:
      engine_ = std::make_unique<TransactionManager>(
          store_.get(), &schema_, &metrics_, options_.divergence);
      break;
    case EngineKind::kTwoPhaseLocking:
      engine_ = std::make_unique<TwoPLManager>(
          store_.get(), &schema_, &metrics_, options_.divergence);
      break;
    case EngineKind::kMultiversion:
      engine_ = std::make_unique<MvtoManager>(options_.store, &schema_,
                                              &metrics_);
      break;
  }
  ESR_CHECK(engine_ != nullptr);
}

TransactionManager& Server::txn_manager() {
  ESR_CHECK(options_.engine == EngineKind::kTimestampOrdering)
      << "txn_manager() is only available on the TO engine";
  return static_cast<TransactionManager&>(*engine_);
}

}  // namespace esr
