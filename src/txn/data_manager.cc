#include "txn/data_manager.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/logging.h"

namespace esr {

DataManager::DataManager(ObjectStore* store, const DivergenceOptions& options)
    : store_(store), options_(options) {
  ESR_CHECK(store_ != nullptr);
}

Result<DataManager::ImportMeasure> DataManager::ImportInconsistency(
    const ObjectRecord& object, Timestamp query_ts) const {
  const std::optional<Value> proper = object.ProperValueFor(query_ts);
  if (!proper.has_value()) {
    return Status::Aborted("write history exhausted for object " +
                           std::to_string(object.id()));
  }
  // distance(present, proper) in the numeric metric space.
  const Inconsistency d =
      static_cast<Inconsistency>(std::llabs(object.value() - *proper));
  return ImportMeasure{d, *proper};
}

Inconsistency DataManager::ExportInconsistency(const ObjectRecord& object,
                                               const TxnView& writer,
                                               Value new_value) const {
  Inconsistency combined = 0.0;
  for (const ObjectRecord::QueryReader& reader : object.query_readers()) {
    if (options_.export_scope == ExportScope::kNewerReaders &&
        !(reader.ts > writer.ts)) {
      continue;
    }
    const Inconsistency d = static_cast<Inconsistency>(
        std::llabs(new_value - reader.proper_value));
    combined = options_.export_combine == ExportCombine::kMax
                   ? std::max(combined, d)
                   : combined + d;
  }
  return combined;
}

}  // namespace esr
