#ifndef ESR_TXN_TRANSACTION_MANAGER_H_
#define ESR_TXN_TRANSACTION_MANAGER_H_

#include <mutex>

#include "cc/to_policy.h"
#include "common/flat_map.h"
#include "common/metrics.h"
#include "obs/profile.h"
#include "hierarchy/accumulator.h"
#include "common/result.h"
#include "common/types.h"
#include "hierarchy/bound_spec.h"
#include "hierarchy/group_schema.h"
#include "txn/data_manager.h"
#include "txn/engine.h"
#include "txn/op_result.h"
#include "txn/transaction.h"

namespace esr {

/// The transaction manager of the prototype server (Sec. 6): tracks active
/// ETs, runs the ESR-extended timestamp-ordering algorithm of Fig. 3 on
/// every operation, performs the bottom-up inconsistency checks of Sec. 5,
/// and handles commit/abort with shadow-value recovery.
///
/// Thread-safe: a single latch serializes operations, matching the
/// prototype's single logically-serialized scheduler front end. The
/// discrete-event simulation calls it single-threaded; the
/// `threaded_server` example calls it from many client threads.
class TransactionManager final : public TransactionEngine {
 public:
  /// `store`, `schema`, and `metrics` must outlive the manager.
  TransactionManager(ObjectStore* store, const GroupSchema* schema,
                     MetricRegistry* metrics,
                     const DivergenceOptions& divergence = {});

  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  /// Starts an ET with a client-supplied timestamp (timestamps are
  /// assigned when transactions begin, at the client site). `bounds` is
  /// the hierarchical inconsistency declaration: its root limit is the
  /// TIL (queries) or TEL (updates).
  TxnId Begin(TxnType type, Timestamp ts, const BoundSpec& bounds) override;

  /// Starts an update ET that may also IMPORT inconsistency through its
  /// reads (Sec. 1 generalization; not part of the paper's evaluation):
  /// `export_bounds` is the TEL declaration, `import_bounds` the budget
  /// its relaxed reads are charged against. With a zero import budget
  /// this is identical to Begin(kUpdate, ...).
  TxnId BeginUpdateWithImport(Timestamp ts, const BoundSpec& export_bounds,
                              const BoundSpec& import_bounds);

  /// Executes `Read id`. On kAbort the transaction no longer exists.
  OpResult Read(TxnId txn, ObjectId object) override;

  /// Executes `Write id, val`. Only update ETs may write.
  OpResult Write(TxnId txn, ObjectId object, Value value) override;

  /// Commits: pending writes become permanent (and enter the per-object
  /// write history); query reader registrations are dropped.
  Status Commit(TxnId txn) override;

  /// Client-requested abort; restores shadow values.
  Status Abort(TxnId txn) override;

  /// Whether `txn` is still active (not yet committed/aborted).
  bool IsActive(TxnId txn) const override;

  /// Borrowed view of an active transaction, for tests and the aggregate
  /// helper; nullptr when not active.
  const Transaction* Find(TxnId txn) const override;

  size_t num_active() const override;

  EngineKind kind() const override {
    return EngineKind::kTimestampOrdering;
  }

  void SetHeadroomTracker(NodeHeadroomTracker* tracker) override {
    std::lock_guard<ProfiledMutex> lock(mu_);
    headroom_tracker_ = tracker;
  }

  /// Pre-sizes the transaction registry for the expected MPL and notes
  /// the per-transaction access-set size so each Begin pre-sizes its
  /// charge/observe maps (no rehash on the operation path).
  void ReserveForLoad(const LoadHints& hints) override {
    std::lock_guard<ProfiledMutex> lock(mu_);
    if (hints.concurrent_txns > 0) {
      transactions_.Reserve(2 * hints.concurrent_txns);
      pool_.reserve(hints.concurrent_txns);
    }
    access_hint_ = hints.objects_per_txn;
  }

  MetricRegistry& metrics() { return *metrics_; }
  DataManager& data_manager() { return data_manager_; }
  const GroupSchema& schema() const { return *schema_; }

 private:
  Transaction& GetActive(TxnId txn);

  /// Registers a new transaction under `id`, recycling a pooled shell
  /// when one is available (every container keeps its capacity; steady
  /// state allocates nothing). Returns the registered transaction.
  Transaction* EmplaceTransaction(TxnId id, TxnType type, Timestamp ts,
                                  const BoundSpec& bounds);

  /// Aborts `txn` as a consequence of a failed operation and returns the
  /// OpResult the client sees.
  OpResult AbortOp(Transaction& txn, AbortReason reason);

  /// Releases everything `txn` holds and erases it.
  void Teardown(Transaction& txn, TxnState final_state, AbortReason reason);

  OpResult DoRead(Transaction& txn, ObjectId object);
  OpResult DoWrite(Transaction& txn, ObjectId object, Value value);

  /// The prototype's single scheduler latch, doubling as a contention
  /// site: under the wall-clock profiler, waiters blame the transaction
  /// the critical section is currently serving (set_holder below).
  mutable ProfiledMutex mu_{"to.engine_mu"};
  const GroupSchema* schema_;
  MetricRegistry* metrics_;
  DataManager data_manager_;
  TxnId next_txn_id_ = 1;
  /// Headroom telemetry sink for new transactions' accumulators (see
  /// NodeHeadroomTracker); not owned, may be null.
  NodeHeadroomTracker* headroom_tracker_ = nullptr;
  /// Expected access-set size for new transactions (0 = no pre-sizing).
  size_t access_hint_ = 0;
  FlatMap<TxnId, Transaction> transactions_;
  /// Torn-down transaction shells awaiting reuse (see EmplaceTransaction).
  /// Bounded by the maximum number of concurrently active transactions.
  std::vector<Transaction> pool_;
  /// Per-level bound-check outcome counters (Sec. 5 observability).
  BoundCheckStats bound_stats_;
  /// Hot-path counters resolved once at construction so per-operation
  /// accounting is an atomic increment, not a map lookup.
  EngineCounters counters_;
};

}  // namespace esr

#endif  // ESR_TXN_TRANSACTION_MANAGER_H_
