#ifndef ESR_TXN_ENGINE_H_
#define ESR_TXN_ENGINE_H_

#include <string_view>

#include "common/status.h"
#include "common/timestamp.h"
#include "common/types.h"
#include "hierarchy/bound_spec.h"
#include "txn/op_result.h"
#include "txn/transaction.h"

namespace esr {

/// Which concurrency-control protocol the server runs. The paper's
/// prototype uses timestamp ordering; the 2PL and MVTO engines implement
/// the alternatives it discusses (Sec. 4 motivates avoiding 2PL's
/// deadlock handling; Sec. 5.1 contrasts the proper-value scheme with
/// MVTO) so they can be compared on identical workloads.
enum class EngineKind : uint8_t {
  /// Timestamp ordering with the ESR relaxations of Fig. 3 (the paper's
  /// protocol). Zero-bound transactions run plain strict TO.
  kTimestampOrdering = 0,
  /// Strict two-phase locking with wait-die deadlock prevention, plus
  /// Wu-et-al-style divergence control: ESR queries read without locks
  /// under the same bound checks.
  kTwoPhaseLocking = 1,
  /// Multiversion timestamp ordering: queries read a committed snapshot
  /// (always serializable, never inconsistent), at the cost of staleness
  /// and per-object version storage. Ignores inconsistency bounds.
  kMultiversion = 2,
};

std::string_view EngineKindToString(EngineKind kind);

/// The protocol-independent transaction-engine interface the server, the
/// simulated clients, and the public API program against. All engines
/// share the OpResult contract (OK / WAIT-retry / ABORT-resubmit) and the
/// per-transaction `Transaction` state record.
class TransactionEngine {
 public:
  virtual ~TransactionEngine() = default;

  /// Starts an ET with a client-supplied timestamp and hierarchical bound
  /// declaration (root limit = TIL or TEL).
  virtual TxnId Begin(TxnType type, Timestamp ts, BoundSpec bounds) = 0;

  virtual OpResult Read(TxnId txn, ObjectId object) = 0;

  /// Only update ETs may write.
  virtual OpResult Write(TxnId txn, ObjectId object, Value value) = 0;

  virtual Status Commit(TxnId txn) = 0;
  virtual Status Abort(TxnId txn) = 0;

  virtual bool IsActive(TxnId txn) const = 0;

  /// Borrowed view of an active transaction's engine-agnostic state
  /// (accumulators, observed value ranges); nullptr when not active.
  virtual const Transaction* Find(TxnId txn) const = 0;

  virtual size_t num_active() const = 0;

  virtual EngineKind kind() const = 0;
};

}  // namespace esr

#endif  // ESR_TXN_ENGINE_H_
