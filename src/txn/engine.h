#ifndef ESR_TXN_ENGINE_H_
#define ESR_TXN_ENGINE_H_

#include <string_view>

#include "common/metrics.h"
#include "common/status.h"
#include "common/timestamp.h"
#include "common/types.h"
#include "hierarchy/bound_spec.h"
#include "txn/op_result.h"
#include "txn/transaction.h"

namespace esr {

/// Which concurrency-control protocol the server runs. The paper's
/// prototype uses timestamp ordering; the 2PL and MVTO engines implement
/// the alternatives it discusses (Sec. 4 motivates avoiding 2PL's
/// deadlock handling; Sec. 5.1 contrasts the proper-value scheme with
/// MVTO) so they can be compared on identical workloads.
enum class EngineKind : uint8_t {
  /// Timestamp ordering with the ESR relaxations of Fig. 3 (the paper's
  /// protocol). Zero-bound transactions run plain strict TO.
  kTimestampOrdering = 0,
  /// Strict two-phase locking with wait-die deadlock prevention, plus
  /// Wu-et-al-style divergence control: ESR queries read without locks
  /// under the same bound checks.
  kTwoPhaseLocking = 1,
  /// Multiversion timestamp ordering: queries read a committed snapshot
  /// (always serializable, never inconsistent), at the cost of staleness
  /// and per-object version storage. Ignores inconsistency bounds.
  kMultiversion = 2,
  /// The TO-ESR protocol scaled across cores: the object store is
  /// partitioned into independently-latched shards, commits are group
  /// commits, and an optional engine-wide epsilon budget is enforced by
  /// lock-free sharded accumulators (src/engine/sharded/).
  kSharded = 3,
};

std::string_view EngineKindToString(EngineKind kind);

/// The counters every engine bumps on its hot path, resolved against the
/// registry once at engine construction: per-operation accounting is then
/// a single relaxed atomic increment instead of a name lookup. The
/// registry owns the counters and must outlive the engine.
struct EngineCounters {
  explicit EngineCounters(MetricRegistry* metrics);

  Counter* op_read;
  Counter* op_write;
  Counter* op_wait;
  Counter* op_inconsistent_ok;
  /// Indexed by TxnType (kQuery = 0, kUpdate = 1).
  Counter* begin[2];
  Counter* commit[2];
  Counter* txn_abort;
  /// Indexed by AbortReason.
  Counter* abort_reason[kNumAbortReasons];

  Counter* BeginFor(TxnType type) {
    return begin[static_cast<size_t>(type)];
  }
  Counter* CommitFor(TxnType type) {
    return commit[static_cast<size_t>(type)];
  }
  Counter* AbortFor(AbortReason reason) {
    return abort_reason[static_cast<size_t>(reason)];
  }
};

/// Expected steady-state load, used to pre-size engine hash maps so the
/// hot path never rehashes mid-run. Over-estimating is cheap (a few KB);
/// zero fields are ignored.
struct LoadHints {
  /// Concurrent transactions (the simulator's MPL; a threaded server's
  /// client-thread count).
  size_t concurrent_txns = 0;
  /// Objects one transaction touches (the workload's transaction length).
  size_t objects_per_txn = 0;
};

/// The protocol-independent transaction-engine interface the server, the
/// simulated clients, and the public API program against. All engines
/// share the OpResult contract (OK / WAIT-retry / ABORT-resubmit) and the
/// per-transaction `Transaction` state record.
class TransactionEngine {
 public:
  virtual ~TransactionEngine() = default;

  /// Pre-sizes internal tables for the expected load (see LoadHints).
  /// Call before the run starts; default no-op.
  virtual void ReserveForLoad(const LoadHints& hints) { (void)hints; }

  /// Starts an ET with a client-supplied timestamp and hierarchical bound
  /// declaration (root limit = TIL or TEL). Borrowed, not consumed: the
  /// spec is a per-type declaration the caller typically reuses for every
  /// transaction of a run, and transaction-pooling engines copy its
  /// limits into recycled storage without allocating.
  virtual TxnId Begin(TxnType type, Timestamp ts,
                      const BoundSpec& bounds) = 0;

  virtual OpResult Read(TxnId txn, ObjectId object) = 0;

  /// Only update ETs may write.
  virtual OpResult Write(TxnId txn, ObjectId object, Value value) = 0;

  virtual Status Commit(TxnId txn) = 0;
  virtual Status Abort(TxnId txn) = 0;

  virtual bool IsActive(TxnId txn) const = 0;

  /// Borrowed view of an active transaction's engine-agnostic state
  /// (accumulators, observed value ranges); nullptr when not active.
  virtual const Transaction* Find(TxnId txn) const = 0;

  virtual size_t num_active() const = 0;

  virtual EngineKind kind() const = 0;

  /// Points every transaction's bound-charge probes at `tracker` so the
  /// telemetry layer can sample per-node epsilon headroom (see
  /// NodeHeadroomTracker). Default no-op: engines that ignore bounds
  /// (MVTO) have nothing to report. `tracker` must outlive the engine;
  /// nullptr detaches.
  virtual void SetHeadroomTracker(NodeHeadroomTracker* tracker) {
    (void)tracker;
  }
};

}  // namespace esr

#endif  // ESR_TXN_ENGINE_H_
