#ifndef ESR_TXN_SERVER_H_
#define ESR_TXN_SERVER_H_

#include <memory>

#include "common/logging.h"
#include "common/metrics.h"
#include "engine/sharded/sharded_engine.h"
#include "hierarchy/group_schema.h"
#include "storage/object_store.h"
#include "txn/engine.h"
#include "txn/transaction_manager.h"

namespace esr {

/// Configuration of the transaction server.
struct ServerOptions {
  ObjectStoreOptions store;
  DivergenceOptions divergence;
  /// Concurrency-control protocol (default: the paper's TO-based ESR).
  EngineKind engine = EngineKind::kTimestampOrdering;
  /// Sharding configuration; only read when engine == kSharded.
  ShardedEngineOptions sharded;
};

/// The central transaction server of the prototype (Sec. 6): front-end
/// scheduler, transaction manager, and data manager over a main-memory
/// object store, with the group hierarchy and the metric registry that the
/// performance tests read.
///
/// The scheduler of the prototype "receives transaction requests from the
/// clients and schedules the operations based on timestamp ordering by
/// submitting it to the transaction manager" — here the Begin/Read/Write/
/// Commit/Abort entry points, which are exactly the five basic operations
/// the prototype supports.
class Server {
 public:
  explicit Server(const ServerOptions& options);

  /// The group hierarchy is server metadata, set up before clients run
  /// (mutable while no transactions are active).
  GroupSchema& schema() { return schema_; }
  const GroupSchema& schema() const { return schema_; }

  /// The monolithic object store. Not available on the sharded engine,
  /// which owns one dense store slice per shard instead (reach them
  /// through sharded_engine()).
  ObjectStore& store() {
    ESR_CHECK(store_ != nullptr) << "no monolithic store on this engine";
    return *store_;
  }
  const ObjectStore& store() const {
    ESR_CHECK(store_ != nullptr) << "no monolithic store on this engine";
    return *store_;
  }

  /// The selected concurrency-control engine.
  TransactionEngine& engine() { return *engine_; }
  const TransactionEngine& engine() const { return *engine_; }

  /// The TO engine's manager; only valid when options().engine is
  /// kTimestampOrdering (the default). Kept for tests and tools that
  /// inspect TO-specific state.
  TransactionManager& txn_manager();

  /// The sharded engine, or nullptr when another engine is selected —
  /// callers branch on this for batched submission and shard telemetry.
  ShardedEngine* sharded_engine();

  MetricRegistry& metrics() { return metrics_; }

  const ServerOptions& options() const { return options_; }

  // -- The five basic operations (Sec. 6) ---------------------------------
  TxnId Begin(TxnType type, Timestamp ts, const BoundSpec& bounds) {
    return engine_->Begin(type, ts, bounds);
  }
  OpResult Read(TxnId txn, ObjectId object) {
    return engine_->Read(txn, object);
  }
  OpResult Write(TxnId txn, ObjectId object, Value value) {
    return engine_->Write(txn, object, value);
  }
  Status Commit(TxnId txn) { return engine_->Commit(txn); }
  Status Abort(TxnId txn) { return engine_->Abort(txn); }

 private:
  ServerOptions options_;
  GroupSchema schema_;
  MetricRegistry metrics_;
  std::unique_ptr<ObjectStore> store_;
  std::unique_ptr<TransactionEngine> engine_;
};

}  // namespace esr

#endif  // ESR_TXN_SERVER_H_
