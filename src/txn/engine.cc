#include "txn/engine.h"

namespace esr {

std::string_view EngineKindToString(EngineKind kind) {
  switch (kind) {
    case EngineKind::kTimestampOrdering:
      return "TO-ESR";
    case EngineKind::kTwoPhaseLocking:
      return "2PL-ESR";
    case EngineKind::kMultiversion:
      return "MVTO";
  }
  return "?";
}

}  // namespace esr
