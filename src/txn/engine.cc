#include "txn/engine.h"

#include <string>

namespace esr {

EngineCounters::EngineCounters(MetricRegistry* metrics) {
  op_read = &metrics->counter("op.read");
  op_write = &metrics->counter("op.write");
  op_wait = &metrics->counter("op.wait");
  op_inconsistent_ok = &metrics->counter("op.inconsistent_ok");
  begin[0] = &metrics->counter("txn.begin.query");
  begin[1] = &metrics->counter("txn.begin.update");
  commit[0] = &metrics->counter("txn.commit.query");
  commit[1] = &metrics->counter("txn.commit.update");
  txn_abort = &metrics->counter("txn.abort");
  for (size_t r = 0; r < kNumAbortReasons; ++r) {
    abort_reason[r] = &metrics->counter(
        std::string("abort.") +
        AbortReasonToString(static_cast<AbortReason>(r)));
  }
}

std::string_view EngineKindToString(EngineKind kind) {
  switch (kind) {
    case EngineKind::kTimestampOrdering:
      return "TO-ESR";
    case EngineKind::kTwoPhaseLocking:
      return "2PL-ESR";
    case EngineKind::kMultiversion:
      return "MVTO";
    case EngineKind::kSharded:
      return "TO-SHARDED";
  }
  return "?";
}

}  // namespace esr
