#ifndef ESR_TXN_DATA_MANAGER_H_
#define ESR_TXN_DATA_MANAGER_H_

#include "cc/to_policy.h"
#include "common/result.h"
#include "common/types.h"
#include "storage/object_store.h"

namespace esr {

/// How the inconsistency exported by one write to several concurrent query
/// readers is combined into a single charge d.
enum class ExportCombine : uint8_t {
  /// Maximum over readers — the paper's rule (Sec. 5.2), justified by the
  /// one-read-per-object-per-transaction discipline.
  kMax = 0,
  /// Sum over readers — the Wu et al. [21] rule the paper argues
  /// overestimates; kept for the ablation bench.
  kSum = 1,
};

/// Which registered query readers a write is charged against.
enum class ExportScope : uint8_t {
  /// All uncommitted query readers of the object, as in Fig. 6.
  kAllReaders = 0,
  /// Only readers with timestamps newer than the writer (the ones whose
  /// serializable view the write actually perturbs); an ablation.
  kNewerReaders = 1,
};

/// Divergence-measurement configuration of the data manager.
struct DivergenceOptions {
  ExportCombine export_combine = ExportCombine::kMax;
  ExportScope export_scope = ExportScope::kAllReaders;
};

/// The server's data manager (paper Sec. 6): owns physical access to the
/// object store and the object-level inconsistency measurements — the
/// distance d between proper and present/new values that the transaction
/// manager then checks against OIL/OEL and the hierarchical bounds.
class DataManager {
 public:
  DataManager(ObjectStore* store, const DivergenceOptions& options);

  ObjectStore& store() { return *store_; }
  const ObjectStore& store() const { return *store_; }
  const DivergenceOptions& options() const { return options_; }

  /// Result of measuring a read's import inconsistency: the distance d and
  /// the proper value it was measured against (the latter is recorded with
  /// the reader registration for later export checks).
  struct ImportMeasure {
    Inconsistency d = 0.0;
    Value proper = 0;
  };

  /// Import inconsistency a read by a query with `query_ts` would view on
  /// `object`: d = |present - proper| (Sec. 5.1). Fails with kAborted if
  /// the bounded history no longer contains a write older than the query.
  Result<ImportMeasure> ImportInconsistency(const ObjectRecord& object,
                                            Timestamp query_ts) const;

  /// Export inconsistency a write of `new_value` by the update ET `writer`
  /// would impose on the registered concurrent query readers of `object`:
  /// the max (or sum) of |new_value - proper_i| (Sec. 5.2). Zero when no
  /// reader is in scope.
  Inconsistency ExportInconsistency(const ObjectRecord& object,
                                    const TxnView& writer,
                                    Value new_value) const;

  /// Object-level admission checks (Sec. 3.2.2).
  bool WithinObjectImportLimit(const ObjectRecord& object,
                               Inconsistency d) const {
    return d <= object.oil();
  }
  bool WithinObjectExportLimit(const ObjectRecord& object,
                               Inconsistency d) const {
    return d <= object.oel();
  }

 private:
  ObjectStore* store_;
  DivergenceOptions options_;
};

}  // namespace esr

#endif  // ESR_TXN_DATA_MANAGER_H_
