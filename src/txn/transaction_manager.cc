#include "txn/transaction_manager.h"

#include <algorithm>
#include <string>

#include "common/logging.h"
#include "obs/trace.h"

namespace esr {
namespace {

AbortReason BoundAbortReason(GroupId violated_group) {
  return violated_group == kRootGroup ? AbortReason::kTransactionBound
                                      : AbortReason::kGroupBound;
}

}  // namespace

TransactionManager::TransactionManager(ObjectStore* store,
                                       const GroupSchema* schema,
                                       MetricRegistry* metrics,
                                       const DivergenceOptions& divergence)
    : schema_(schema),
      metrics_(metrics),
      data_manager_(store, divergence),
      bound_stats_(metrics),
      counters_(metrics) {
  ESR_CHECK(schema_ != nullptr);
  ESR_CHECK(metrics_ != nullptr);
}

Transaction* TransactionManager::EmplaceTransaction(TxnId id, TxnType type,
                                                    Timestamp ts,
                                                    const BoundSpec& bounds) {
  if (!pool_.empty()) {
    Transaction shell = std::move(pool_.back());
    pool_.pop_back();
    shell.ResetForReuse(id, type, ts, bounds);
    return transactions_.TryEmplace(id, std::move(shell)).first;
  }
  return transactions_
      .TryEmplace(id, Transaction(id, type, ts, schema_, bounds))
      .first;
}

TxnId TransactionManager::Begin(TxnType type, Timestamp ts,
                                const BoundSpec& bounds) {
  // Phase scopes open *before* the latch so latch wait is attributed to
  // the phase (coverage: every in-engine nanosecond lands in a phase).
  ScopedPhaseTimer phase(ProfilePhase::kValidate);
  std::lock_guard<ProfiledMutex> lock(mu_);
  const TxnId id = next_txn_id_++;
  Transaction* txn = EmplaceTransaction(id, type, ts, bounds);
  if (access_hint_ > 0) txn->ReserveAccessSets(access_hint_);
  txn->AttachHeadroomTracker(headroom_tracker_);
  txn->set_trace_span(BeginSpan(SpanKind::kTxn, id, ts.site));
  counters_.BeginFor(type)->Increment();
  ESR_TRACE_EVENT(
      WithSpan(TraceEvent::BeginTxn(id, type, ts.site), txn->trace_span()));
  return id;
}

TxnId TransactionManager::BeginUpdateWithImport(
    Timestamp ts, const BoundSpec& export_bounds,
    const BoundSpec& import_bounds) {
  ScopedPhaseTimer phase(ProfilePhase::kValidate);
  std::lock_guard<ProfiledMutex> lock(mu_);
  const TxnId id = next_txn_id_++;
  Transaction* txn;
  if (!pool_.empty()) {
    Transaction shell = std::move(pool_.back());
    pool_.pop_back();
    shell.ResetForReuse(id, ts, export_bounds, import_bounds);
    txn = transactions_.TryEmplace(id, std::move(shell)).first;
  } else {
    txn = transactions_
              .TryEmplace(id, Transaction(id, ts, schema_, export_bounds,
                                          import_bounds))
              .first;
  }
  if (access_hint_ > 0) txn->ReserveAccessSets(access_hint_);
  txn->AttachHeadroomTracker(headroom_tracker_);
  txn->set_trace_span(BeginSpan(SpanKind::kTxn, id, ts.site));
  counters_.BeginFor(TxnType::kUpdate)->Increment();
  ESR_TRACE_EVENT(WithSpan(TraceEvent::BeginTxn(id, TxnType::kUpdate, ts.site),
                           txn->trace_span()));
  return id;
}

OpResult TransactionManager::Read(TxnId txn, ObjectId object) {
  ScopedPhaseTimer phase(ProfilePhase::kValidate);
  std::lock_guard<ProfiledMutex> lock(mu_);
  mu_.set_holder(txn);
  Transaction& t = GetActive(txn);
  TraceSpan op_span(SpanKind::kOp, txn, t.ts().site, object, t.trace_span());
  return DoRead(t, object);
}

OpResult TransactionManager::Write(TxnId txn, ObjectId object, Value value) {
  ScopedPhaseTimer phase(ProfilePhase::kValidate);
  std::lock_guard<ProfiledMutex> lock(mu_);
  mu_.set_holder(txn);
  Transaction& t = GetActive(txn);
  TraceSpan op_span(SpanKind::kOp, txn, t.ts().site, object, t.trace_span());
  return DoWrite(t, object, value);
}

OpResult TransactionManager::DoRead(Transaction& txn, ObjectId object) {
  ObjectRecord& obj = data_manager_.store().Get(object);
  const ReadDecision decision = DecideRead(txn.View(), obj);

  switch (decision) {
    case ReadDecision::kWait:
      counters_.op_wait->Increment();
      ESR_TRACE_EVENT(TraceEvent::WaitOn(txn.id(), txn.ts().site, object,
                                         obj.uncommitted_writer()));
      // Flow arrow from this wait to the blocking writer's resolution.
      ESR_TRACE_EVENT(TraceEvent::Flow(TraceEventType::kFlowBegin,
                                       obj.uncommitted_writer(), txn.id(),
                                       txn.ts().site));
      return OpResult::Wait(obj.uncommitted_writer());

    case ReadDecision::kAbortLate:
      return AbortOp(txn, AbortReason::kLateRead);

    case ReadDecision::kProceedConsistent: {
      const Value present = obj.value();
      if (txn.is_query()) {
        obj.NoteQueryRead(txn.ts());
        // For a consistent read the proper value IS the present value.
        if (obj.RegisterQueryReader(txn.id(), txn.ts(), present)) {
          txn.NoteRegisteredRead(object);
        }
      } else {
        obj.NoteUpdateRead(txn.ts());
      }
      txn.ObserveValue(object, present);
      txn.CountOp();
      counters_.op_read->Increment();
      ESR_TRACE_EVENT(TraceEvent::Op(TraceEventType::kRead, txn.id(),
                                     txn.ts().site, object));
      return OpResult::Ok(present, 0.0, /*was_relaxed=*/false);
    }

    case ReadDecision::kRelaxLateRead:
    case ReadDecision::kRelaxUncommitted: {
      // ESR query ETs (Fig. 3 cases 1 and 2), or update ETs with an
      // import budget (Sec. 1 generalization).
      auto measure_or = data_manager_.ImportInconsistency(obj, txn.ts());
      if (!measure_or.ok()) {
        return AbortOp(txn, AbortReason::kHistoryExhausted);
      }
      const DataManager::ImportMeasure measure = *measure_or;
      // Object-level check: d <= OIL_x (Sec. 3.2.2).
      if (!data_manager_.WithinObjectImportLimit(obj, measure.d)) {
        return AbortOp(txn, AbortReason::kObjectBound);
      }
      // Repeated reads of one object charge only the worst-case excess
      // over what this transaction already paid for it (the min/max rule
      // of Sec. 3.2.1), not the full d again.
      const Inconsistency increment =
          std::max(0.0, measure.d - txn.ChargedFor(object));
      // Group and transaction levels, bottom-up (Sec. 5.3.1).
      const ChargeResult charge = txn.read_accumulator().TryCharge(
          object, increment, &bound_stats_, txn.id(), txn.ts().site);
      if (!charge.admitted) {
        return AbortOp(txn, BoundAbortReason(charge.violated_group));
      }
      txn.NoteCharged(object, measure.d);
      const Value present = obj.value();
      if (txn.is_query()) {
        obj.NoteQueryRead(txn.ts());
        if (obj.RegisterQueryReader(txn.id(), txn.ts(), measure.proper)) {
          txn.NoteRegisteredRead(object);
        }
      } else {
        obj.NoteUpdateRead(txn.ts());
      }
      txn.ObserveValue(object, present);
      txn.CountOp();
      counters_.op_read->Increment();
      ESR_TRACE_EVENT(TraceEvent::Op(TraceEventType::kRead, txn.id(),
                                     txn.ts().site, object));
      if (measure.d > 0.0) {
        txn.CountInconsistentOp();
        counters_.op_inconsistent_ok->Increment();
        ESR_TRACE_EVENT(TraceEvent::ImportCharge(txn.id(), txn.ts().site,
                                                 object, measure.d));
      }
      return OpResult::Ok(present, measure.d, /*was_relaxed=*/true);
    }
  }
  ESR_LOG(kFatal) << "unreachable read decision";
  return OpResult::Abort(AbortReason::kNone);
}

OpResult TransactionManager::DoWrite(Transaction& txn, ObjectId object,
                                     Value value) {
  ESR_CHECK(txn.type() == TxnType::kUpdate)
      << "query ETs are read-only; Write from txn " << txn.id();
  ObjectRecord& obj = data_manager_.store().Get(object);
  const WriteDecision decision = DecideWrite(txn.View(), obj);

  switch (decision) {
    case WriteDecision::kWait:
      counters_.op_wait->Increment();
      ESR_TRACE_EVENT(TraceEvent::WaitOn(txn.id(), txn.ts().site, object,
                                         obj.uncommitted_writer()));
      ESR_TRACE_EVENT(TraceEvent::Flow(TraceEventType::kFlowBegin,
                                       obj.uncommitted_writer(), txn.id(),
                                       txn.ts().site));
      return OpResult::Wait(obj.uncommitted_writer());

    case WriteDecision::kAbortLateRead:
    case WriteDecision::kAbortLateWrite:
      return AbortOp(txn, AbortReason::kLateWrite);

    case WriteDecision::kProceedConsistent: {
      {
        ScopedPhaseTimer apply_phase(ProfilePhase::kApply);
        obj.ApplyWrite(txn.id(), txn.ts(), value);
      }
      txn.NotePendingWrite(object);
      txn.CountOp();
      counters_.op_write->Increment();
      ESR_TRACE_EVENT(TraceEvent::Op(TraceEventType::kWrite, txn.id(),
                                     txn.ts().site, object));
      return OpResult::Ok(value, 0.0, /*was_relaxed=*/false);
    }

    case WriteDecision::kRelaxLateWrite: {
      // Fig. 3 case 3: the write is older than a query's read of x.
      const Inconsistency d =
          data_manager_.ExportInconsistency(obj, txn.View(), value);
      if (!data_manager_.WithinObjectExportLimit(obj, d)) {
        return AbortOp(txn, AbortReason::kObjectBound);
      }
      const ChargeResult charge = txn.accumulator().TryCharge(
          object, d, &bound_stats_, txn.id(), txn.ts().site);
      if (!charge.admitted) {
        return AbortOp(txn, BoundAbortReason(charge.violated_group));
      }
      {
        ScopedPhaseTimer apply_phase(ProfilePhase::kApply);
        obj.ApplyWrite(txn.id(), txn.ts(), value);
      }
      txn.NotePendingWrite(object);
      txn.CountOp();
      counters_.op_write->Increment();
      ESR_TRACE_EVENT(TraceEvent::Op(TraceEventType::kWrite, txn.id(),
                                     txn.ts().site, object));
      if (d > 0.0) {
        txn.CountInconsistentOp();
        counters_.op_inconsistent_ok->Increment();
      }
      return OpResult::Ok(value, d, /*was_relaxed=*/true);
    }
  }
  ESR_LOG(kFatal) << "unreachable write decision";
  return OpResult::Abort(AbortReason::kNone);
}

Status TransactionManager::Commit(TxnId txn) {
  ScopedPhaseTimer phase(ProfilePhase::kCommit);
  std::lock_guard<ProfiledMutex> lock(mu_);
  mu_.set_holder(txn);
  Transaction* t = transactions_.Find(txn);
  if (t == nullptr) {
    return Status::FailedPrecondition("transaction " + std::to_string(txn) +
                                      " is not active");
  }
  TraceSpan commit_span(SpanKind::kCommit, txn, t->ts().site, 0,
                        t->trace_span());
  Teardown(*t, TxnState::kCommitted, AbortReason::kNone);
  return Status::OK();
}

Status TransactionManager::Abort(TxnId txn) {
  ScopedPhaseTimer phase(ProfilePhase::kCommit);
  std::lock_guard<ProfiledMutex> lock(mu_);
  mu_.set_holder(txn);
  Transaction* t = transactions_.Find(txn);
  if (t == nullptr) {
    return Status::FailedPrecondition("transaction " + std::to_string(txn) +
                                      " is not active");
  }
  TraceSpan commit_span(SpanKind::kCommit, txn, t->ts().site, 0,
                        t->trace_span());
  Teardown(*t, TxnState::kAborted, AbortReason::kUserRequested);
  return Status::OK();
}

bool TransactionManager::IsActive(TxnId txn) const {
  std::lock_guard<ProfiledMutex> lock(mu_);
  return transactions_.Contains(txn);
}

const Transaction* TransactionManager::Find(TxnId txn) const {
  std::lock_guard<ProfiledMutex> lock(mu_);
  return transactions_.Find(txn);
}

size_t TransactionManager::num_active() const {
  std::lock_guard<ProfiledMutex> lock(mu_);
  return transactions_.size();
}

Transaction& TransactionManager::GetActive(TxnId txn) {
  Transaction* t = transactions_.Find(txn);
  ESR_CHECK(t != nullptr)
      << "operation on unknown/finished transaction " << txn;
  return *t;
}

OpResult TransactionManager::AbortOp(Transaction& txn, AbortReason reason) {
  Teardown(txn, TxnState::kAborted, reason);
  return OpResult::Abort(reason);
}

void TransactionManager::Teardown(Transaction& txn, TxnState final_state,
                                  AbortReason reason) {
  ObjectStore& store = data_manager_.store();
  if (final_state == TxnState::kCommitted) {
    for (const ObjectId object : txn.pending_writes()) {
      store.Get(object).CommitWrite(txn.id());
    }
    counters_.CommitFor(txn.type())->Increment();
    ESR_TRACE_EVENT(TraceEvent::CommitTxn(txn.id(), txn.ts().site));
  } else {
    // Shadow-value recovery: restore pre-images instead of rollback
    // (Sec. 6); the client will resubmit with a new timestamp.
    for (const ObjectId object : txn.pending_writes()) {
      store.Get(object).AbortWrite(txn.id());
    }
    counters_.txn_abort->Increment();
    counters_.AbortFor(reason)->Increment();
    ESR_TRACE_EVENT(TraceEvent::AbortTxn(txn.id(), txn.ts().site,
                                         static_cast<uint8_t>(reason)));
  }
  for (const ObjectId object : txn.registered_reads()) {
    store.Get(object).UnregisterQueryReader(txn.id());
  }
  // Writers resolve any conflict flows that targeted them (arrows bind by
  // writer TxnId; unmatched ends are ignored by trace viewers), then the
  // transaction's lifetime span closes.
  if (!txn.pending_writes().empty()) {
    ESR_TRACE_EVENT(TraceEvent::Flow(TraceEventType::kFlowEnd, txn.id(),
                                     txn.id(), txn.ts().site));
  }
  EndSpan(SpanKind::kTxn, txn.trace_span(), txn.id(), txn.ts().site);
  // Recycle the shell — the next Begin reuses its container capacity, so
  // steady-state Begin/Teardown never touch the allocator. Erasing the
  // moved-from husk is the last touch of `txn`: backward-shift erase
  // moves neighbors and leaves the reference dangling.
  const TxnId id = txn.id();
  pool_.push_back(std::move(txn));
  transactions_.Erase(id);
}

}  // namespace esr
