#include "txn/transaction.h"

#include <algorithm>

namespace esr {

Transaction::Transaction(TxnId id, TxnType type, Timestamp ts,
                         const GroupSchema* schema, BoundSpec bounds)
    : id_(id),
      type_(type),
      ts_(ts),
      accumulator_(schema, std::move(bounds),
                   type == TxnType::kQuery ? ChargeDirection::kImport
                                           : ChargeDirection::kExport) {}

Transaction::Transaction(TxnId id, Timestamp ts, const GroupSchema* schema,
                         BoundSpec bounds, BoundSpec import_bounds)
    : id_(id),
      type_(TxnType::kUpdate),
      ts_(ts),
      accumulator_(schema, std::move(bounds), ChargeDirection::kExport),
      import_accumulator_(std::make_unique<InconsistencyAccumulator>(
          schema, std::move(import_bounds), ChargeDirection::kImport)) {}

void Transaction::ResetShared(TxnId id, TxnType type, Timestamp ts) {
  id_ = id;
  type_ = type;
  ts_ = ts;
  state_ = TxnState::kActive;
  charged_.Clear();
  observed_.Clear();
  registered_reads_.clear();
  pending_writes_.clear();
  ops_executed_ = 0;
  inconsistent_ops_ = 0;
  trace_span_ = 0;
}

void Transaction::ResetForReuse(TxnId id, TxnType type, Timestamp ts,
                                const BoundSpec& bounds) {
  ResetShared(id, type, ts);
  accumulator_.ResetForReuse(bounds, type == TxnType::kQuery
                                         ? ChargeDirection::kImport
                                         : ChargeDirection::kExport);
  import_accumulator_.reset();
}

void Transaction::ResetForReuse(TxnId id, Timestamp ts,
                                const BoundSpec& bounds,
                                const BoundSpec& import_bounds) {
  ResetShared(id, TxnType::kUpdate, ts);
  accumulator_.ResetForReuse(bounds, ChargeDirection::kExport);
  if (import_accumulator_ == nullptr) {
    import_accumulator_ = std::make_unique<InconsistencyAccumulator>(
        accumulator_.schema(), import_bounds, ChargeDirection::kImport);
  } else {
    import_accumulator_->ResetForReuse(import_bounds,
                                       ChargeDirection::kImport);
  }
}

Inconsistency Transaction::ChargedFor(ObjectId object) const {
  const Inconsistency* d = charged_.Find(object);
  return d == nullptr ? 0.0 : *d;
}

void Transaction::NoteCharged(ObjectId object, Inconsistency d) {
  Inconsistency& slot = charged_[object];
  slot = std::max(slot, d);
}

void Transaction::NotePendingWrite(ObjectId object) {
  if (!HasPendingWrite(object)) pending_writes_.push_back(object);
}

bool Transaction::HasPendingWrite(ObjectId object) const {
  return std::find(pending_writes_.begin(), pending_writes_.end(), object) !=
         pending_writes_.end();
}

void Transaction::ObserveValue(ObjectId object, Value value) {
  auto [range, inserted] =
      observed_.TryEmplace(object, ValueRange{value, value, value, 0});
  if (!inserted) {
    range->min = std::min(range->min, value);
    range->max = std::max(range->max, value);
    range->last = value;
  }
  ++range->reads;
}

const Transaction::ValueRange* Transaction::RangeFor(ObjectId object) const {
  return observed_.Find(object);
}

}  // namespace esr
