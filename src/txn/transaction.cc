#include "txn/transaction.h"

#include <algorithm>

namespace esr {

Transaction::Transaction(TxnId id, TxnType type, Timestamp ts,
                         const GroupSchema* schema, BoundSpec bounds)
    : id_(id),
      type_(type),
      ts_(ts),
      accumulator_(schema, std::move(bounds),
                   type == TxnType::kQuery ? ChargeDirection::kImport
                                           : ChargeDirection::kExport) {}

Transaction::Transaction(TxnId id, Timestamp ts, const GroupSchema* schema,
                         BoundSpec bounds, BoundSpec import_bounds)
    : id_(id),
      type_(TxnType::kUpdate),
      ts_(ts),
      accumulator_(schema, std::move(bounds), ChargeDirection::kExport),
      import_accumulator_(std::make_unique<InconsistencyAccumulator>(
          schema, std::move(import_bounds), ChargeDirection::kImport)) {}

Inconsistency Transaction::ChargedFor(ObjectId object) const {
  auto it = charged_.find(object);
  return it == charged_.end() ? 0.0 : it->second;
}

void Transaction::NoteCharged(ObjectId object, Inconsistency d) {
  Inconsistency& slot = charged_[object];
  slot = std::max(slot, d);
}

void Transaction::NoteRegisteredRead(ObjectId object) {
  if (std::find(registered_reads_.begin(), registered_reads_.end(), object) ==
      registered_reads_.end()) {
    registered_reads_.push_back(object);
  }
}

void Transaction::NotePendingWrite(ObjectId object) {
  if (!HasPendingWrite(object)) pending_writes_.push_back(object);
}

bool Transaction::HasPendingWrite(ObjectId object) const {
  return std::find(pending_writes_.begin(), pending_writes_.end(), object) !=
         pending_writes_.end();
}

void Transaction::ObserveValue(ObjectId object, Value value) {
  auto [it, inserted] = observed_.try_emplace(
      object, ValueRange{value, value, value, 0});
  ValueRange& range = it->second;
  if (!inserted) {
    range.min = std::min(range.min, value);
    range.max = std::max(range.max, value);
    range.last = value;
  }
  ++range.reads;
}

const Transaction::ValueRange* Transaction::RangeFor(ObjectId object) const {
  auto it = observed_.find(object);
  return it == observed_.end() ? nullptr : &it->second;
}

}  // namespace esr
