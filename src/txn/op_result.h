#ifndef ESR_TXN_OP_RESULT_H_
#define ESR_TXN_OP_RESULT_H_

#include "cc/to_policy.h"
#include "common/types.h"

namespace esr {

/// Outcome of one Read/Write request, as returned to the client stub.
///
/// kWait means the engine requires the caller to retry the same operation
/// after the blocking transaction resolves (strict ordering in the TO
/// engine, a lock conflict in the 2PL engine, an uncommitted version in
/// the MVTO engine); kAbort means the whole transaction has already been
/// aborted server-side (shadow values restored, locks released, readers
/// deregistered) and must be resubmitted with a fresh timestamp.
struct OpResult {
  enum class Kind : uint8_t { kOk = 0, kWait = 1, kAbort = 2 };

  Kind kind = Kind::kOk;
  /// The value read (for reads) or written (for writes) when kind == kOk.
  Value value = 0;
  /// The transaction this operation is blocked on when kind == kWait.
  TxnId blocker = kInvalidTxnId;
  /// Why the transaction aborted when kind == kAbort.
  AbortReason abort_reason = AbortReason::kNone;
  /// Inconsistency charged for this operation (0 for consistent ops).
  Inconsistency inconsistency = 0.0;
  /// True when the operation executed although the serializable protocol
  /// would have rejected it (an ESR relaxation).
  bool relaxed = false;

  bool ok() const { return kind == Kind::kOk; }

  static OpResult Ok(Value v, Inconsistency d, bool was_relaxed) {
    OpResult r;
    r.kind = Kind::kOk;
    r.value = v;
    r.inconsistency = d;
    r.relaxed = was_relaxed;
    return r;
  }
  static OpResult Wait(TxnId blocker) {
    OpResult r;
    r.kind = Kind::kWait;
    r.blocker = blocker;
    return r;
  }
  static OpResult Abort(AbortReason reason) {
    OpResult r;
    r.kind = Kind::kAbort;
    r.abort_reason = reason;
    return r;
  }
};

}  // namespace esr

#endif  // ESR_TXN_OP_RESULT_H_
