#include "esr/aggregate.h"

#include <algorithm>
#include <limits>

namespace esr {

std::string_view AggregateKindToString(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kSum:
      return "sum";
    case AggregateKind::kAvg:
      return "avg";
    case AggregateKind::kMin:
      return "min";
    case AggregateKind::kMax:
      return "max";
    case AggregateKind::kCount:
      return "count";
  }
  return "?";
}

Result<AggregateOutcome> EvaluateAggregate(
    const Transaction& txn, const std::vector<ObjectId>& objects,
    AggregateKind kind) {
  if (objects.empty()) {
    return Status::InvalidArgument("aggregate over zero objects");
  }

  double sum_last = 0.0, sum_min = 0.0, sum_max = 0.0;
  double min_last = std::numeric_limits<double>::infinity();
  double min_min = min_last, min_max = min_last;
  double max_last = -min_last, max_min = max_last, max_max = max_last;

  for (const ObjectId object : objects) {
    const Transaction::ValueRange* range = txn.RangeFor(object);
    if (range == nullptr) {
      return Status::NotFound("object " + std::to_string(object) +
                              " was not read by transaction " +
                              std::to_string(txn.id()));
    }
    const double lo = static_cast<double>(range->min);
    const double hi = static_cast<double>(range->max);
    const double last = static_cast<double>(range->last);
    sum_last += last;
    sum_min += lo;
    sum_max += hi;
    min_last = std::min(min_last, last);
    min_min = std::min(min_min, lo);
    min_max = std::min(min_max, hi);
    max_last = std::max(max_last, last);
    max_min = std::max(max_min, lo);
    max_max = std::max(max_max, hi);
  }

  const double n = static_cast<double>(objects.size());
  AggregateOutcome out;
  switch (kind) {
    case AggregateKind::kSum:
      out.result = sum_last;
      out.min_result = sum_min;
      out.max_result = sum_max;
      break;
    case AggregateKind::kAvg:
      // Sec. 5.3.2: min_result sums the minima and divides by n, and
      // likewise for max_result.
      out.result = sum_last / n;
      out.min_result = sum_min / n;
      out.max_result = sum_max / n;
      break;
    case AggregateKind::kMin:
      out.result = min_last;
      out.min_result = min_min;
      out.max_result = min_max;
      break;
    case AggregateKind::kMax:
      out.result = max_last;
      out.min_result = max_min;
      out.max_result = max_max;
      break;
    case AggregateKind::kCount:
      out.result = out.min_result = out.max_result = n;
      break;
  }
  out.result_inconsistency = (out.max_result - out.min_result) / 2.0;
  return out;
}

Status CheckAggregateAdmissible(const Transaction& txn,
                                const AggregateOutcome& outcome) {
  const Inconsistency til =
      txn.accumulator().bounds().transaction_limit();
  if (outcome.result_inconsistency > til) {
    return Status::BoundViolation(
        "result inconsistency " +
        std::to_string(outcome.result_inconsistency) + " exceeds TIL " +
        std::to_string(til));
  }
  return Status::OK();
}

}  // namespace esr
