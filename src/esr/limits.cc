#include "esr/limits.h"

namespace esr {

std::string_view EpsilonLevelToString(EpsilonLevel level) {
  switch (level) {
    case EpsilonLevel::kZero:
      return "zero";
    case EpsilonLevel::kLow:
      return "low";
    case EpsilonLevel::kMedium:
      return "medium";
    case EpsilonLevel::kHigh:
      return "high";
  }
  return "?";
}

TransactionLimits LimitsForLevel(EpsilonLevel level) {
  switch (level) {
    case EpsilonLevel::kZero:
      return TransactionLimits{0, 0};
    case EpsilonLevel::kLow:
      return TransactionLimits{10'000, 1'000};
    case EpsilonLevel::kMedium:
      return TransactionLimits{50'000, 5'000};
    case EpsilonLevel::kHigh:
      return TransactionLimits{100'000, 10'000};
  }
  return TransactionLimits{0, 0};
}

}  // namespace esr
