#ifndef ESR_ESR_AGGREGATE_H_
#define ESR_ESR_AGGREGATE_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "txn/transaction.h"

namespace esr {

/// Aggregate computed by a query ET over the objects it read.
///
/// The performance study uses kSum only (its inconsistency is controlled
/// dynamically, read by read); the other kinds implement the Sec. 5.3.2
/// mechanism, where the result inconsistency is derived from the minimum
/// and maximum values each read viewed and the admission decision is made
/// at the aggregation point rather than per read.
enum class AggregateKind : uint8_t {
  kSum = 0,
  kAvg = 1,
  kMin = 2,
  kMax = 3,
  kCount = 4,
};

std::string_view AggregateKindToString(AggregateKind kind);

/// Result of evaluating an aggregate over a query ET's observed values.
struct AggregateOutcome {
  /// The aggregate over the last-viewed value of each object.
  double result = 0.0;
  /// Lower/upper aggregate over the minimum/maximum viewed values.
  double min_result = 0.0;
  double max_result = 0.0;
  /// Half the min-to-max spread — the paper's `result_inconsistency`.
  /// For kSum this is 0 by the one-read discipline; the dynamic per-read
  /// accounting (transaction accumulator) bounds the sum instead.
  Inconsistency result_inconsistency = 0.0;
};

/// Evaluates `kind` over the given objects using the min/max/last values
/// the transaction viewed. Every object must have been read by `txn`
/// (kNotFound otherwise — predeclaration of the read set is not required,
/// but aggregation over unread objects is meaningless).
Result<AggregateOutcome> EvaluateAggregate(
    const Transaction& txn, const std::vector<ObjectId>& objects,
    AggregateKind kind);

/// The aggregation-point admission rule of Sec. 5.3.2: the result
/// inconsistency (combined with what the reads already imported
/// dynamically) must fit in the transaction import limit.
Status CheckAggregateAdmissible(const Transaction& txn,
                                const AggregateOutcome& outcome);

}  // namespace esr

#endif  // ESR_ESR_AGGREGATE_H_
