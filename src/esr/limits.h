#ifndef ESR_ESR_LIMITS_H_
#define ESR_ESR_LIMITS_H_

#include <string_view>

#include "common/types.h"

namespace esr {

/// The four magnitudes of transaction-level inconsistency bounds used in
/// the paper's first set of tests (Table in Sec. 7). "Zero" is the SR
/// baseline.
enum class EpsilonLevel : uint8_t {
  kZero = 0,
  kLow = 1,
  kMedium = 2,
  kHigh = 3,
};

std::string_view EpsilonLevelToString(EpsilonLevel level);

/// The transaction-level pair (TIL for query ETs, TEL for update ETs).
/// TEL values are lower because update ETs have ~6 operations vs ~20 for
/// query ETs (Sec. 7).
struct TransactionLimits {
  Inconsistency til = 0;
  Inconsistency tel = 0;
};

/// Exact bound magnitudes from the paper:
///   high   : TIL 100,000  TEL 10,000
///   medium : TIL  50,000  TEL  5,000
///   low    : TIL  10,000  TEL  1,000
///   zero   : TIL       0  TEL      0   (SR)
TransactionLimits LimitsForLevel(EpsilonLevel level);

}  // namespace esr

#endif  // ESR_ESR_LIMITS_H_
