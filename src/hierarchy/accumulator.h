#ifndef ESR_HIERARCHY_ACCUMULATOR_H_
#define ESR_HIERARCHY_ACCUMULATOR_H_

#include <vector>

#include "common/metrics.h"
#include "common/timestamp.h"
#include "common/types.h"
#include "hierarchy/bound_spec.h"
#include "hierarchy/group_schema.h"
#include "obs/trace.h"

namespace esr {

/// Which direction of inconsistency an accumulator tracks: imported (what
/// relaxed reads absorbed, the paper's script-I) or exported (what this
/// transaction's writes leaked to others, script-E). Recorded in every
/// BoundCheck trace event so the offline auditor can recertify each
/// accumulator's bounds independently.
enum class ChargeDirection : uint8_t {
  kImport = 0,
  kExport = 1,
};

const char* ChargeDirectionToString(ChargeDirection direction);

/// Outcome of attempting to charge an operation's inconsistency against a
/// transaction's hierarchical bounds.
struct ChargeResult {
  bool admitted = false;
  /// Node whose limit rejected the charge (kInvalidGroup when admitted).
  GroupId violated_group = kInvalidGroup;
};

/// Per-level bound-check outcome counters, lazily registered in a
/// MetricRegistry as `bound_check.level<depth>.admit|reject` (depth 0 is
/// the transaction level / root, deeper levels are groups). One instance
/// lives in each engine and is handed to TryCharge so the Sec. 5
/// machinery stops being a black box: the metrics snapshot shows exactly
/// which level of the hierarchy admits or rejects charges.
///
/// Not internally synchronized: callers invoke Count under the engine's
/// latch (the counters themselves are atomic).
class BoundCheckStats {
 public:
  /// `metrics` may be nullptr (all counting disabled); it must outlive
  /// this object otherwise.
  explicit BoundCheckStats(MetricRegistry* metrics) : metrics_(metrics) {}

  void Count(size_t depth, bool admitted);

 private:
  Counter* Slot(std::vector<Counter*>& slots, size_t depth,
                const char* suffix);

  MetricRegistry* metrics_;
  // Indexed by depth; grown lazily since the schema may gain levels after
  // the engine is constructed.
  std::vector<Counter*> admit_;
  std::vector<Counter*> reject_;
};

/// Per-transaction, per-direction (import or export) accumulation of
/// inconsistency over the group hierarchy, implementing the bottom-up
/// control of Sec. 5.3.1:
///
///   for each node n on path(object) -> root:
///     accumulated[n] + d * weight(n) <= limit(n)    (check pass)
///   then increment every node on the path            (charge pass)
///
/// If any check fails nothing is charged and the transaction must abort.
/// The root accumulation is the transaction's total imported inconsistency
/// (the paper's script-I for queries / script-E for updates).
class InconsistencyAccumulator {
 public:
  /// `schema` must outlive the accumulator. `bounds` is copied (it is a
  /// per-transaction declaration). `direction` only labels the trace
  /// events this accumulator emits; it does not change the arithmetic.
  InconsistencyAccumulator(const GroupSchema* schema, BoundSpec bounds,
                           ChargeDirection direction = ChargeDirection::kImport);

  /// Checks the full leaf-to-root path for `object` and, if every level
  /// admits `d`, charges every level. d must be >= 0; d == 0 always
  /// succeeds without modifying state.
  ///
  /// When `stats` is non-null every node check is counted per level, and
  /// when the global trace recorder is enabled a BoundCheck event is
  /// emitted per node (attributed to `txn`/`site`). The bottom-up
  /// short-circuit is observable: nodes above the first rejecting one are
  /// neither checked nor counted.
  ChargeResult TryCharge(ObjectId object, Inconsistency d,
                         BoundCheckStats* stats = nullptr,
                         TxnId txn = kInvalidTxnId, SiteId site = 0) {
    if (d == 0.0) return ChargeResult{true, kInvalidGroup};
    // Dispatch inline so call sites on the per-operation hot path reach
    // the untraced walk — whose frame matches an ESR_TRACE_DISABLED
    // build's exactly — through one predicted branch.
    if (GlobalTraceEnabled()) {
      return TryChargeImpl<true>(object, d, stats, txn, site);
    }
    return TryChargeImpl<false>(object, d, stats, txn, site);
  }

  /// Pure check: would `d` on `object` be admitted? Never charges.
  ChargeResult Check(ObjectId object, Inconsistency d) const;

  /// Inconsistency accumulated at one node.
  Inconsistency accumulated(GroupId group) const;

  /// Total inconsistency at the transaction level (root accumulation).
  Inconsistency total() const { return accumulated(kRootGroup); }

  /// Remaining headroom at the transaction level.
  Inconsistency Headroom() const;

  const BoundSpec& bounds() const { return bounds_; }
  ChargeDirection direction() const { return direction_; }

 private:
  /// The walk body; instantiated untraced (branch-identical to an
  /// ESR_TRACE_DISABLED build) and traced, selected once per call.
  template <bool kTraced>
  ChargeResult TryChargeImpl(ObjectId object, Inconsistency d,
                             BoundCheckStats* stats, TxnId txn, SiteId site);

  const GroupSchema* schema_;
  BoundSpec bounds_;
  ChargeDirection direction_;
  // Indexed by GroupId; lazily sized to schema_->num_groups().
  std::vector<Inconsistency> accumulated_;
};

}  // namespace esr

#endif  // ESR_HIERARCHY_ACCUMULATOR_H_
