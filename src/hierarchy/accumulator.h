#ifndef ESR_HIERARCHY_ACCUMULATOR_H_
#define ESR_HIERARCHY_ACCUMULATOR_H_

#include <vector>

#include "common/types.h"
#include "hierarchy/bound_spec.h"
#include "hierarchy/group_schema.h"

namespace esr {

/// Outcome of attempting to charge an operation's inconsistency against a
/// transaction's hierarchical bounds.
struct ChargeResult {
  bool admitted = false;
  /// Node whose limit rejected the charge (kInvalidGroup when admitted).
  GroupId violated_group = kInvalidGroup;
};

/// Per-transaction, per-direction (import or export) accumulation of
/// inconsistency over the group hierarchy, implementing the bottom-up
/// control of Sec. 5.3.1:
///
///   for each node n on path(object) -> root:
///     accumulated[n] + d * weight(n) <= limit(n)    (check pass)
///   then increment every node on the path            (charge pass)
///
/// If any check fails nothing is charged and the transaction must abort.
/// The root accumulation is the transaction's total imported inconsistency
/// (the paper's script-I for queries / script-E for updates).
class InconsistencyAccumulator {
 public:
  /// `schema` must outlive the accumulator. `bounds` is copied (it is a
  /// per-transaction declaration).
  InconsistencyAccumulator(const GroupSchema* schema, BoundSpec bounds);

  /// Checks the full leaf-to-root path for `object` and, if every level
  /// admits `d`, charges every level. d must be >= 0; d == 0 always
  /// succeeds without modifying state.
  ChargeResult TryCharge(ObjectId object, Inconsistency d);

  /// Pure check: would `d` on `object` be admitted? Never charges.
  ChargeResult Check(ObjectId object, Inconsistency d) const;

  /// Inconsistency accumulated at one node.
  Inconsistency accumulated(GroupId group) const;

  /// Total inconsistency at the transaction level (root accumulation).
  Inconsistency total() const { return accumulated(kRootGroup); }

  /// Remaining headroom at the transaction level.
  Inconsistency Headroom() const;

  const BoundSpec& bounds() const { return bounds_; }

 private:
  const GroupSchema* schema_;
  BoundSpec bounds_;
  // Indexed by GroupId; lazily sized to schema_->num_groups().
  std::vector<Inconsistency> accumulated_;
};

}  // namespace esr

#endif  // ESR_HIERARCHY_ACCUMULATOR_H_
