#ifndef ESR_HIERARCHY_ACCUMULATOR_H_
#define ESR_HIERARCHY_ACCUMULATOR_H_

#include <algorithm>
#include <atomic>
#include <cstring>
#include <vector>

#include "common/metrics.h"
#include "common/timestamp.h"
#include "common/types.h"
#include "hierarchy/bound_spec.h"
#include "hierarchy/group_schema.h"
#include "obs/trace.h"

namespace esr {

/// Live per-node epsilon-headroom telemetry, fed by the accumulator's
/// charge pass: for every hierarchy node it keeps, over the current
/// sampling window, the largest accumulated inconsistency any
/// transaction reached there, the smallest *headroom fraction*
/// ((limit - accumulated) / limit — the margin to a bound violation as a
/// fraction of the bound), the limit in force at that minimum, and the
/// number of charges. Nodes a transaction left unbounded (or bounded at
/// zero, i.e. serializable) are never observed: headroom is only
/// meaningful against a positive finite bound.
///
/// The interesting signal is the margin to a violation, not the post-hoc
/// violation itself; a window whose minimum headroom dips toward zero
/// shows *when* the workload ran hot against its bounds even though
/// every individual check still admitted.
///
/// Slots are relaxed atomics so the threaded server's background sampler
/// can read while engine threads publish; the discrete-event simulator
/// uses the same code single-threaded. One tracker instance serves every
/// accumulator of one engine (attach via
/// TransactionEngine::SetHeadroomTracker); windows are advanced by
/// whoever samples (SeriesSampler, threaded_server's gauge loop).
class NodeHeadroomTracker {
 public:
  struct NodeSample {
    double max_accumulated = 0.0;
    /// 1.0 (full headroom) when the node was not observed this window.
    double min_headroom_frac = 1.0;
    /// Limit in force when the minimum was recorded (0 if unobserved).
    double limit_at_min = 0.0;
    int64_t charges = 0;
  };

  explicit NodeHeadroomTracker(size_t num_nodes) : slots_(num_nodes) {
    StartWindow();
  }

  NodeHeadroomTracker(const NodeHeadroomTracker&) = delete;
  NodeHeadroomTracker& operator=(const NodeHeadroomTracker&) = delete;

  size_t num_nodes() const { return slots_.size(); }

  /// Hot-path probe (called from the accumulator's charge pass, under
  /// the engine latch): a handful of relaxed atomic min/max updates.
  void Observe(GroupId group, Inconsistency accumulated,
               Inconsistency limit) {
    if (limit <= 0.0 || limit >= kUnbounded || group >= slots_.size()) {
      return;
    }
    Slot& slot = slots_[group];
    AtomicMax(slot.max_accumulated, accumulated);
    const double frac = (limit - accumulated) / limit;
    if (AtomicMin(slot.min_headroom_frac, frac)) {
      // Pairing is best-effort under concurrency: the limit published
      // here can momentarily belong to a different charge than the
      // minimum. Exact in the single-threaded simulator.
      slot.limit_at_min.store(Bits(limit), std::memory_order_relaxed);
    }
    slot.charges.fetch_add(1, std::memory_order_relaxed);
  }

  /// Current-window reading of one node.
  NodeSample WindowSample(GroupId group) const;

  /// Resets every node's window-local extrema (start of a new sampling
  /// window). Not synchronized with concurrent Observe calls beyond slot
  /// atomicity: a charge racing the reset lands in one window or the
  /// other, never in neither.
  void StartWindow();

 private:
  struct Slot {
    std::atomic<uint64_t> max_accumulated{0};
    std::atomic<uint64_t> min_headroom_frac{0};
    std::atomic<uint64_t> limit_at_min{0};
    std::atomic<int64_t> charges{0};
  };

  static uint64_t Bits(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
  }
  static double FromBits(uint64_t bits) {
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  static void AtomicMax(std::atomic<uint64_t>& slot, double value);
  /// True when `value` became the new minimum.
  static bool AtomicMin(std::atomic<uint64_t>& slot, double value);

  std::vector<Slot> slots_;
};

/// Which direction of inconsistency an accumulator tracks: imported (what
/// relaxed reads absorbed, the paper's script-I) or exported (what this
/// transaction's writes leaked to others, script-E). Recorded in every
/// BoundCheck trace event so the offline auditor can recertify each
/// accumulator's bounds independently.
enum class ChargeDirection : uint8_t {
  kImport = 0,
  kExport = 1,
};

const char* ChargeDirectionToString(ChargeDirection direction);

/// Outcome of attempting to charge an operation's inconsistency against a
/// transaction's hierarchical bounds.
struct ChargeResult {
  bool admitted = false;
  /// Node whose limit rejected the charge (kInvalidGroup when admitted).
  GroupId violated_group = kInvalidGroup;
};

/// Per-level bound-check outcome counters, lazily registered in a
/// MetricRegistry as `bound_check.level<depth>.admit|reject` (depth 0 is
/// the transaction level / root, deeper levels are groups). One instance
/// lives in each engine and is handed to TryCharge so the Sec. 5
/// machinery stops being a black box: the metrics snapshot shows exactly
/// which level of the hierarchy admits or rejects charges.
///
/// Not internally synchronized: callers invoke Count under the engine's
/// latch (the counters themselves are atomic).
class BoundCheckStats {
 public:
  /// `metrics` may be nullptr (all counting disabled); it must outlive
  /// this object otherwise.
  explicit BoundCheckStats(MetricRegistry* metrics) : metrics_(metrics) {}

  void Count(size_t depth, bool admitted);

 private:
  Counter* Slot(std::vector<Counter*>& slots, size_t depth,
                const char* suffix);

  MetricRegistry* metrics_;
  // Indexed by depth; grown lazily since the schema may gain levels after
  // the engine is constructed.
  std::vector<Counter*> admit_;
  std::vector<Counter*> reject_;
};

/// Per-transaction, per-direction (import or export) accumulation of
/// inconsistency over the group hierarchy, implementing the bottom-up
/// control of Sec. 5.3.1:
///
///   for each node n on path(object) -> root:
///     accumulated[n] + d * weight(n) <= limit(n)    (check pass)
///   then increment every node on the path            (charge pass)
///
/// If any check fails nothing is charged and the transaction must abort.
/// The root accumulation is the transaction's total imported inconsistency
/// (the paper's script-I for queries / script-E for updates).
class InconsistencyAccumulator {
 public:
  /// `schema` must outlive the accumulator. `bounds` is copied (it is a
  /// per-transaction declaration). `direction` only labels the trace
  /// events this accumulator emits; it does not change the arithmetic.
  InconsistencyAccumulator(const GroupSchema* schema, BoundSpec bounds,
                           ChargeDirection direction = ChargeDirection::kImport);

  /// Checks the full leaf-to-root path for `object` and, if every level
  /// admits `d`, charges every level. d must be >= 0; d == 0 always
  /// succeeds without modifying state.
  ///
  /// When `stats` is non-null every node check is counted per level, and
  /// when the global trace recorder is enabled a BoundCheck event is
  /// emitted per node (attributed to `txn`/`site`). The bottom-up
  /// short-circuit is observable: nodes above the first rejecting one are
  /// neither checked nor counted.
  ChargeResult TryCharge(ObjectId object, Inconsistency d,
                         BoundCheckStats* stats = nullptr,
                         TxnId txn = kInvalidTxnId, SiteId site = 0) {
    if (d == 0.0) return ChargeResult{true, kInvalidGroup};
    // Dispatch inline so call sites on the per-operation hot path reach
    // the untraced walk — whose frame matches an ESR_TRACE_DISABLED
    // build's exactly — through one predicted branch.
    if (GlobalTraceEnabled()) {
      return TryChargeImpl<true>(object, d, stats, txn, site);
    }
    return TryChargeImpl<false>(object, d, stats, txn, site);
  }

  /// Pure check: would `d` on `object` be admitted? Never charges.
  ChargeResult Check(ObjectId object, Inconsistency d) const;

  /// Inconsistency accumulated at one node.
  Inconsistency accumulated(GroupId group) const;

  /// Total inconsistency at the transaction level (root accumulation).
  Inconsistency total() const { return accumulated(kRootGroup); }

  /// Remaining headroom at the transaction level.
  Inconsistency Headroom() const;

  const BoundSpec& bounds() const { return bounds_; }
  ChargeDirection direction() const { return direction_; }
  const GroupSchema* schema() const { return schema_; }

  /// Rewinds to a freshly-constructed state under a new bound
  /// declaration, reusing the node array's and the bound table's storage
  /// (the transaction pool's reset path; allocation-free in steady
  /// state). Detaches any headroom tracker — the engine reattaches one
  /// right after Begin.
  void ResetForReuse(const BoundSpec& bounds, ChargeDirection direction) {
    bounds_.AssignFrom(bounds);
    direction_ = direction;
    std::fill(accumulated_.begin(), accumulated_.end(), 0.0);
#ifndef ESR_TRACE_DISABLED
    tracker_ = nullptr;
#endif
  }

  /// Attaches the engine's headroom tracker; every subsequent successful
  /// charge publishes (accumulated, limit) per path node. nullptr (the
  /// default) keeps the charge pass probe-free; compiled out entirely
  /// under ESR_TRACE_DISABLED. `tracker` must outlive the accumulator.
  void set_headroom_tracker(NodeHeadroomTracker* tracker) {
#ifndef ESR_TRACE_DISABLED
    tracker_ = tracker;
#else
    (void)tracker;
#endif
  }

 private:
  /// The walk body; instantiated untraced (branch-identical to an
  /// ESR_TRACE_DISABLED build) and traced, selected once per call.
  template <bool kTraced>
  ChargeResult TryChargeImpl(ObjectId object, Inconsistency d,
                             BoundCheckStats* stats, TxnId txn, SiteId site);

  const GroupSchema* schema_;
  BoundSpec bounds_;
  ChargeDirection direction_;
#ifndef ESR_TRACE_DISABLED
  NodeHeadroomTracker* tracker_ = nullptr;
#endif
  // Indexed by GroupId; lazily sized to schema_->num_groups().
  std::vector<Inconsistency> accumulated_;
};

}  // namespace esr

#endif  // ESR_HIERARCHY_ACCUMULATOR_H_
