#include "hierarchy/accumulator.h"

#include <string>
#include <type_traits>

#include "common/logging.h"
#include "obs/trace.h"

namespace esr {

Counter* BoundCheckStats::Slot(std::vector<Counter*>& slots, size_t depth,
                               const char* suffix) {
  if (depth >= slots.size()) slots.resize(depth + 1, nullptr);
  if (slots[depth] == nullptr) {
    slots[depth] = &metrics_->counter("bound_check.level" +
                                      std::to_string(depth) + suffix);
  }
  return slots[depth];
}

void BoundCheckStats::Count(size_t depth, bool admitted) {
  if (metrics_ == nullptr) return;
  Counter* c = admitted ? Slot(admit_, depth, ".admit")
                        : Slot(reject_, depth, ".reject");
  c->Increment();
}

const char* ChargeDirectionToString(ChargeDirection direction) {
  return direction == ChargeDirection::kExport ? "export" : "import";
}

InconsistencyAccumulator::InconsistencyAccumulator(const GroupSchema* schema,
                                                   BoundSpec bounds,
                                                   ChargeDirection direction)
    : schema_(schema), bounds_(std::move(bounds)), direction_(direction) {
  ESR_CHECK(schema_ != nullptr);
  accumulated_.assign(schema_->num_groups(), 0.0);
}

ChargeResult InconsistencyAccumulator::Check(ObjectId object,
                                             Inconsistency d) const {
  ESR_CHECK(d >= 0.0) << "negative inconsistency";
  if (d == 0.0) return ChargeResult{true, kInvalidGroup};
  GroupId g = schema_->GroupOf(object);
  while (true) {
    const Inconsistency charge = d * schema_->weight(g);
    if (accumulated_[g] + charge > bounds_.LimitFor(g)) {
      return ChargeResult{false, g};
    }
    if (g == kRootGroup) break;
    g = schema_->parent(g);
  }
  return ChargeResult{true, kInvalidGroup};
}

// The walk body is stamped out twice so the untraced instantiation is
// instruction-identical to an ESR_TRACE_DISABLED build: TryCharge sits on
// every relaxed read's critical path, where even a dead per-node branch
// on a register bool is measurable.
template <bool kTraced>
ChargeResult InconsistencyAccumulator::TryChargeImpl(ObjectId object,
                                                     Inconsistency d,
                                                     BoundCheckStats* stats,
                                                     TxnId txn, SiteId site) {
  ESR_CHECK(d >= 0.0) << "negative inconsistency";
  // The walk gets its own causal span so every BoundCheck instant below
  // attaches to it and Perfetto shows the walk's cost inside the op.
  struct NoopSpan {
    NoopSpan(SpanKind, TxnId, SiteId, uint64_t) {}
  };
  using WalkSpan = std::conditional_t<kTraced, TraceSpan, NoopSpan>;
  WalkSpan walk_span(SpanKind::kBoundWalk, txn, site, object);
  // Depth of the object's group below the root, for per-level
  // attribution; skipped entirely on the unobserved fast path.
  size_t leaf_depth = 0;
  if (stats != nullptr || kTraced) {
    for (GroupId g = schema_->GroupOf(object); g != kRootGroup;
         g = schema_->parent(g)) {
      ++leaf_depth;
    }
  }

  // Check pass, bottom-up (Sec. 5.3.1): stop at the first rejecting node.
  ChargeResult result{true, kInvalidGroup};
  GroupId g = schema_->GroupOf(object);
  size_t depth = leaf_depth;
  while (true) {
    const Inconsistency charge = d * schema_->weight(g);
    const Inconsistency limit = bounds_.LimitFor(g);
    const bool admitted = accumulated_[g] + charge <= limit;
    if (stats != nullptr) stats->Count(depth, admitted);
    if constexpr (kTraced) {
      TraceEvent check = TraceEvent::BoundCheck(
          txn, site, static_cast<uint16_t>(depth), g, charge, limit,
          admitted);
      // detail bit 0 = admitted, bit 1 = direction; the auditor replays
      // each accumulator (import vs export) separately.
      check.detail |= static_cast<uint8_t>(direction_) << 1;
      GlobalTrace().Record(check);
    }
    if (!admitted) {
      result = ChargeResult{false, g};
      break;
    }
    if (g == kRootGroup) break;
    g = schema_->parent(g);
    --depth;
  }
  if (!result.admitted) return result;

  // Charge pass: every check admitted, so increment the whole path.
  g = schema_->GroupOf(object);
  while (true) {
    accumulated_[g] += d * schema_->weight(g);
    if (g == kRootGroup) break;
    g = schema_->parent(g);
  }
  return result;
}

template ChargeResult InconsistencyAccumulator::TryChargeImpl<true>(
    ObjectId object, Inconsistency d, BoundCheckStats* stats, TxnId txn,
    SiteId site);
template ChargeResult InconsistencyAccumulator::TryChargeImpl<false>(
    ObjectId object, Inconsistency d, BoundCheckStats* stats, TxnId txn,
    SiteId site);

Inconsistency InconsistencyAccumulator::accumulated(GroupId group) const {
  ESR_CHECK(schema_->Contains(group));
  return accumulated_[group];
}

Inconsistency InconsistencyAccumulator::Headroom() const {
  const Inconsistency limit = bounds_.transaction_limit();
  if (limit == kUnbounded) return kUnbounded;
  const Inconsistency room = limit - total();
  return room > 0.0 ? room : 0.0;
}

}  // namespace esr
