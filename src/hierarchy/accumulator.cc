#include "hierarchy/accumulator.h"

#include <string>

#include "common/logging.h"
#include "obs/trace.h"

namespace esr {

Counter* BoundCheckStats::Slot(std::vector<Counter*>& slots, size_t depth,
                               const char* suffix) {
  if (depth >= slots.size()) slots.resize(depth + 1, nullptr);
  if (slots[depth] == nullptr) {
    slots[depth] = &metrics_->counter("bound_check.level" +
                                      std::to_string(depth) + suffix);
  }
  return slots[depth];
}

void BoundCheckStats::Count(size_t depth, bool admitted) {
  if (metrics_ == nullptr) return;
  Counter* c = admitted ? Slot(admit_, depth, ".admit")
                        : Slot(reject_, depth, ".reject");
  c->Increment();
}

InconsistencyAccumulator::InconsistencyAccumulator(const GroupSchema* schema,
                                                   BoundSpec bounds)
    : schema_(schema), bounds_(std::move(bounds)) {
  ESR_CHECK(schema_ != nullptr);
  accumulated_.assign(schema_->num_groups(), 0.0);
}

ChargeResult InconsistencyAccumulator::Check(ObjectId object,
                                             Inconsistency d) const {
  ESR_CHECK(d >= 0.0) << "negative inconsistency";
  if (d == 0.0) return ChargeResult{true, kInvalidGroup};
  GroupId g = schema_->GroupOf(object);
  while (true) {
    const Inconsistency charge = d * schema_->weight(g);
    if (accumulated_[g] + charge > bounds_.LimitFor(g)) {
      return ChargeResult{false, g};
    }
    if (g == kRootGroup) break;
    g = schema_->parent(g);
  }
  return ChargeResult{true, kInvalidGroup};
}

ChargeResult InconsistencyAccumulator::TryCharge(ObjectId object,
                                                 Inconsistency d,
                                                 BoundCheckStats* stats,
                                                 TxnId txn, SiteId site) {
  ESR_CHECK(d >= 0.0) << "negative inconsistency";
  if (d == 0.0) return ChargeResult{true, kInvalidGroup};

#ifdef ESR_TRACE_DISABLED
  const bool tracing = false;
#else
  const bool tracing = GlobalTrace().enabled();
#endif
  // Depth of the object's group below the root, for per-level
  // attribution; skipped entirely on the unobserved fast path.
  size_t leaf_depth = 0;
  if (stats != nullptr || tracing) {
    for (GroupId g = schema_->GroupOf(object); g != kRootGroup;
         g = schema_->parent(g)) {
      ++leaf_depth;
    }
  }

  // Check pass, bottom-up (Sec. 5.3.1): stop at the first rejecting node.
  ChargeResult result{true, kInvalidGroup};
  GroupId g = schema_->GroupOf(object);
  size_t depth = leaf_depth;
  while (true) {
    const Inconsistency charge = d * schema_->weight(g);
    const Inconsistency limit = bounds_.LimitFor(g);
    const bool admitted = accumulated_[g] + charge <= limit;
    if (stats != nullptr) stats->Count(depth, admitted);
#ifndef ESR_TRACE_DISABLED
    // Reuses the enabled() load from above instead of ESR_TRACE_EVENT,
    // which would re-read it on every node of the path.
    if (tracing) {
      GlobalTrace().Record(TraceEvent::BoundCheck(
          txn, site, static_cast<uint16_t>(depth), g, charge, limit,
          admitted));
    }
#endif
    if (!admitted) {
      result = ChargeResult{false, g};
      break;
    }
    if (g == kRootGroup) break;
    g = schema_->parent(g);
    --depth;
  }
  if (!result.admitted) return result;

  // Charge pass: every check admitted, so increment the whole path.
  g = schema_->GroupOf(object);
  while (true) {
    accumulated_[g] += d * schema_->weight(g);
    if (g == kRootGroup) break;
    g = schema_->parent(g);
  }
  return result;
}

Inconsistency InconsistencyAccumulator::accumulated(GroupId group) const {
  ESR_CHECK(schema_->Contains(group));
  return accumulated_[group];
}

Inconsistency InconsistencyAccumulator::Headroom() const {
  const Inconsistency limit = bounds_.transaction_limit();
  if (limit == kUnbounded) return kUnbounded;
  const Inconsistency room = limit - total();
  return room > 0.0 ? room : 0.0;
}

}  // namespace esr
