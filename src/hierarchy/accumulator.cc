#include "hierarchy/accumulator.h"

#include <string>
#include <type_traits>

#include "common/logging.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace esr {

Counter* BoundCheckStats::Slot(std::vector<Counter*>& slots, size_t depth,
                               const char* suffix) {
  if (depth >= slots.size()) slots.resize(depth + 1, nullptr);
  if (slots[depth] == nullptr) {
    slots[depth] = &metrics_->counter("bound_check.level" +
                                      std::to_string(depth) + suffix);
  }
  return slots[depth];
}

void BoundCheckStats::Count(size_t depth, bool admitted) {
  if (metrics_ == nullptr) return;
  Counter* c = admitted ? Slot(admit_, depth, ".admit")
                        : Slot(reject_, depth, ".reject");
  c->Increment();
}

const char* ChargeDirectionToString(ChargeDirection direction) {
  return direction == ChargeDirection::kExport ? "export" : "import";
}

void NodeHeadroomTracker::AtomicMax(std::atomic<uint64_t>& slot,
                                    double value) {
  uint64_t cur = slot.load(std::memory_order_relaxed);
  // Bit-pattern CAS loop: compare as doubles (headroom can be negative, so
  // the nonnegative-IEEE-orders-as-uint64 trick does not apply).
  while (value > FromBits(cur)) {
    if (slot.compare_exchange_weak(cur, Bits(value),
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

bool NodeHeadroomTracker::AtomicMin(std::atomic<uint64_t>& slot,
                                    double value) {
  uint64_t cur = slot.load(std::memory_order_relaxed);
  while (value < FromBits(cur)) {
    if (slot.compare_exchange_weak(cur, Bits(value),
                                   std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

NodeHeadroomTracker::NodeSample NodeHeadroomTracker::WindowSample(
    GroupId group) const {
  NodeSample sample;
  if (group >= slots_.size()) return sample;
  const Slot& slot = slots_[group];
  sample.max_accumulated =
      FromBits(slot.max_accumulated.load(std::memory_order_relaxed));
  sample.min_headroom_frac =
      FromBits(slot.min_headroom_frac.load(std::memory_order_relaxed));
  sample.limit_at_min =
      FromBits(slot.limit_at_min.load(std::memory_order_relaxed));
  sample.charges = slot.charges.load(std::memory_order_relaxed);
  return sample;
}

void NodeHeadroomTracker::StartWindow() {
  for (Slot& slot : slots_) {
    slot.max_accumulated.store(Bits(0.0), std::memory_order_relaxed);
    slot.min_headroom_frac.store(Bits(1.0), std::memory_order_relaxed);
    slot.limit_at_min.store(Bits(0.0), std::memory_order_relaxed);
    slot.charges.store(0, std::memory_order_relaxed);
  }
}

InconsistencyAccumulator::InconsistencyAccumulator(const GroupSchema* schema,
                                                   BoundSpec bounds,
                                                   ChargeDirection direction)
    : schema_(schema), bounds_(std::move(bounds)), direction_(direction) {
  ESR_CHECK(schema_ != nullptr);
  accumulated_.assign(schema_->num_groups(), 0.0);
}

ChargeResult InconsistencyAccumulator::Check(ObjectId object,
                                             Inconsistency d) const {
  ESR_CHECK(d >= 0.0) << "negative inconsistency";
  if (d == 0.0) return ChargeResult{true, kInvalidGroup};
  GroupId g = schema_->GroupOf(object);
  while (true) {
    const Inconsistency charge = d * schema_->weight(g);
    if (accumulated_[g] + charge > bounds_.LimitFor(g)) {
      return ChargeResult{false, g};
    }
    if (g == kRootGroup) break;
    g = schema_->parent(g);
  }
  return ChargeResult{true, kInvalidGroup};
}

// The walk body is stamped out twice so the untraced instantiation is
// instruction-identical to an ESR_TRACE_DISABLED build: TryCharge sits on
// every relaxed read's critical path, where even a dead per-node branch
// on a register bool is measurable.
template <bool kTraced>
ChargeResult InconsistencyAccumulator::TryChargeImpl(ObjectId object,
                                                     Inconsistency d,
                                                     BoundCheckStats* stats,
                                                     TxnId txn, SiteId site) {
  ESR_CHECK(d >= 0.0) << "negative inconsistency";
  // The walk gets its own causal span so every BoundCheck instant below
  // attaches to it and Perfetto shows the walk's cost inside the op.
  struct NoopSpan {
    NoopSpan(SpanKind, TxnId, SiteId, uint64_t) {}
  };
  using WalkSpan = std::conditional_t<kTraced, TraceSpan, NoopSpan>;
  WalkSpan walk_span(SpanKind::kBoundWalk, txn, site, object);
  // Wall-clock attribution of the walk (threaded_server only). Like the
  // headroom probe below, the disabled cost is one relaxed load and a
  // predicted branch; ESR_TRACE_DISABLED compiles it out entirely.
  ScopedPhaseTimer walk_phase(ProfilePhase::kBoundWalk);
  // Depth of the object's group below the root, for per-level
  // attribution; skipped entirely on the unobserved fast path.
  size_t leaf_depth = 0;
  if (stats != nullptr || kTraced) {
    for (GroupId g = schema_->GroupOf(object); g != kRootGroup;
         g = schema_->parent(g)) {
      ++leaf_depth;
    }
  }

  // Check pass, bottom-up (Sec. 5.3.1): stop at the first rejecting node.
  ChargeResult result{true, kInvalidGroup};
  GroupId g = schema_->GroupOf(object);
  size_t depth = leaf_depth;
  while (true) {
    const Inconsistency charge = d * schema_->weight(g);
    const Inconsistency limit = bounds_.LimitFor(g);
    const bool admitted = accumulated_[g] + charge <= limit;
    if (stats != nullptr) stats->Count(depth, admitted);
    if constexpr (kTraced) {
      TraceEvent check = TraceEvent::BoundCheck(
          txn, site, static_cast<uint16_t>(depth), g, charge, limit,
          admitted);
      // detail bit 0 = admitted, bit 1 = direction; the auditor replays
      // each accumulator (import vs export) separately.
      check.detail |= static_cast<uint8_t>(direction_) << 1;
      GlobalTrace().Record(check);
    }
    if (!admitted) {
      result = ChargeResult{false, g};
      break;
    }
    if (g == kRootGroup) break;
    g = schema_->parent(g);
    --depth;
  }
#ifndef ESR_TRACE_DISABLED
  // Charge-path contention site: one acquisition per walk, a conflict per
  // bound rejection (blamed on the rejected transaction — with a single
  // accumulator per txn there is no holder to blame). Cold branch; the
  // function-local static resolves the site once per process.
  if (GlobalProfilerEnabled()) {
    static ContentionSite* const charge_site =
        GlobalProfiler().site("hierarchy.charge_path");
    charge_site->RecordAcquisition();
    if (!result.admitted) charge_site->RecordConflict(txn);
  }
#endif
  if (!result.admitted) return result;

  // Charge pass: every check admitted, so increment the whole path.
  g = schema_->GroupOf(object);
  while (true) {
    accumulated_[g] += d * schema_->weight(g);
#ifndef ESR_TRACE_DISABLED
    // Headroom probe: one predicted-null branch when no tracker is
    // attached; compiled out with the rest of the tracing layer.
    if (tracker_ != nullptr) {
      tracker_->Observe(g, accumulated_[g], bounds_.LimitFor(g));
    }
#endif
    if (g == kRootGroup) break;
    g = schema_->parent(g);
  }
  return result;
}

template ChargeResult InconsistencyAccumulator::TryChargeImpl<true>(
    ObjectId object, Inconsistency d, BoundCheckStats* stats, TxnId txn,
    SiteId site);
template ChargeResult InconsistencyAccumulator::TryChargeImpl<false>(
    ObjectId object, Inconsistency d, BoundCheckStats* stats, TxnId txn,
    SiteId site);

Inconsistency InconsistencyAccumulator::accumulated(GroupId group) const {
  ESR_CHECK(schema_->Contains(group));
  return accumulated_[group];
}

Inconsistency InconsistencyAccumulator::Headroom() const {
  const Inconsistency limit = bounds_.transaction_limit();
  if (limit == kUnbounded) return kUnbounded;
  const Inconsistency room = limit - total();
  return room > 0.0 ? room : 0.0;
}

}  // namespace esr
