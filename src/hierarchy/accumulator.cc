#include "hierarchy/accumulator.h"

#include "common/logging.h"

namespace esr {

InconsistencyAccumulator::InconsistencyAccumulator(const GroupSchema* schema,
                                                   BoundSpec bounds)
    : schema_(schema), bounds_(std::move(bounds)) {
  ESR_CHECK(schema_ != nullptr);
  accumulated_.assign(schema_->num_groups(), 0.0);
}

ChargeResult InconsistencyAccumulator::Check(ObjectId object,
                                             Inconsistency d) const {
  ESR_CHECK(d >= 0.0) << "negative inconsistency";
  if (d == 0.0) return ChargeResult{true, kInvalidGroup};
  GroupId g = schema_->GroupOf(object);
  while (true) {
    const Inconsistency charge = d * schema_->weight(g);
    if (accumulated_[g] + charge > bounds_.LimitFor(g)) {
      return ChargeResult{false, g};
    }
    if (g == kRootGroup) break;
    g = schema_->parent(g);
  }
  return ChargeResult{true, kInvalidGroup};
}

ChargeResult InconsistencyAccumulator::TryCharge(ObjectId object,
                                                 Inconsistency d) {
  ChargeResult result = Check(object, d);
  if (!result.admitted || d == 0.0) return result;
  GroupId g = schema_->GroupOf(object);
  while (true) {
    accumulated_[g] += d * schema_->weight(g);
    if (g == kRootGroup) break;
    g = schema_->parent(g);
  }
  return result;
}

Inconsistency InconsistencyAccumulator::accumulated(GroupId group) const {
  ESR_CHECK(schema_->Contains(group));
  return accumulated_[group];
}

Inconsistency InconsistencyAccumulator::Headroom() const {
  const Inconsistency limit = bounds_.transaction_limit();
  if (limit == kUnbounded) return kUnbounded;
  const Inconsistency room = limit - total();
  return room > 0.0 ? room : 0.0;
}

}  // namespace esr
