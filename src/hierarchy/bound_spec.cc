#include "hierarchy/bound_spec.h"

namespace esr {

BoundSpec BoundSpec::TransactionOnly(Inconsistency transaction_limit) {
  BoundSpec spec;
  spec.SetLimit(kRootGroup, transaction_limit);
  return spec;
}

BoundSpec& BoundSpec::SetLimit(GroupId group, Inconsistency limit) {
  limits_[group] = limit;
  return *this;
}

Inconsistency BoundSpec::LimitFor(GroupId group) const {
  const Inconsistency* limit = limits_.Find(group);
  return limit == nullptr ? kUnbounded : *limit;
}

}  // namespace esr
