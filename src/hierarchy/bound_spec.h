#ifndef ESR_HIERARCHY_BOUND_SPEC_H_
#define ESR_HIERARCHY_BOUND_SPEC_H_

#include "common/flat_map.h"
#include "common/status.h"
#include "common/types.h"
#include "hierarchy/group_schema.h"

namespace esr {

/// The inconsistency-limit declaration a transaction submits at BEGIN
/// (paper Sec. 3.1: `BEGIN Query TIL 10000 / LIMIT company 4000 / ...`).
///
/// The root limit is the transaction-level bound (TIL for queries, TEL for
/// updates); interior nodes get group limits; unlisted nodes are
/// unconstrained. The same type specifies both the import side (queries)
/// and the export side (updates).
class BoundSpec {
 public:
  BoundSpec() = default;

  /// A spec with only the transaction-level limit — the paper's two-level
  /// configuration (object limits live on the objects themselves).
  static BoundSpec TransactionOnly(Inconsistency transaction_limit);

  /// An entirely unconstrained spec (equivalent to infinite epsilon).
  static BoundSpec Unlimited() { return BoundSpec(); }

  /// Sets the limit on a node; root = transaction level.
  BoundSpec& SetLimit(GroupId group, Inconsistency limit);

  /// Convenience: set the transaction-level (root) limit.
  BoundSpec& SetTransactionLimit(Inconsistency limit) {
    return SetLimit(kRootGroup, limit);
  }

  /// Replaces this spec's limits with a copy of `other`'s, reusing this
  /// spec's table storage — allocation-free once capacity covers the
  /// limit count (the transaction pool's reset path).
  void AssignFrom(const BoundSpec& other) {
    limits_.Clear();
    other.limits_.ForEach([this](GroupId group, const Inconsistency& limit) {
      limits_[group] = limit;
    });
  }

  Inconsistency LimitFor(GroupId group) const;
  Inconsistency transaction_limit() const { return LimitFor(kRootGroup); }

  /// Zero transaction limit means the ET demands full serializability
  /// (ESR reduces to SR when bounds are zero).
  bool IsSerializable() const { return transaction_limit() <= 0.0; }

  size_t num_limits() const { return limits_.size(); }

 private:
  FlatMap<GroupId, Inconsistency> limits_;
};

}  // namespace esr

#endif  // ESR_HIERARCHY_BOUND_SPEC_H_
