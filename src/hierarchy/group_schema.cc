#include "hierarchy/group_schema.h"

#include <algorithm>

namespace esr {

GroupSchema::GroupSchema() {
  parents_.push_back(kRootGroup);
  names_.push_back("overall");
  weights_.push_back(1.0);
  by_name_.emplace("overall", kRootGroup);
}

Result<GroupId> GroupSchema::AddGroup(const std::string& name,
                                      GroupId parent) {
  if (!Contains(parent)) {
    return Status::NotFound("parent group " + std::to_string(parent));
  }
  if (by_name_.count(name) > 0) {
    return Status::InvalidArgument("duplicate group name '" + name + "'");
  }
  const GroupId id = static_cast<GroupId>(parents_.size());
  parents_.push_back(parent);
  names_.push_back(name);
  weights_.push_back(1.0);
  by_name_.emplace(name, id);
  return id;
}

Status GroupSchema::AssignObject(ObjectId object, GroupId group) {
  if (!Contains(group)) {
    return Status::NotFound("group " + std::to_string(group));
  }
  object_groups_[object] = group;
  return Status::OK();
}

Status GroupSchema::SetWeight(GroupId group, double weight) {
  if (!Contains(group)) {
    return Status::NotFound("group " + std::to_string(group));
  }
  if (weight < 0.0) {
    return Status::InvalidArgument("weight must be non-negative");
  }
  weights_[group] = weight;
  return Status::OK();
}

Result<GroupId> GroupSchema::FindGroup(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("group '" + name + "'");
  }
  return it->second;
}

GroupId GroupSchema::GroupOf(ObjectId object) const {
  const GroupId* group = object_groups_.Find(object);
  return group == nullptr ? kRootGroup : *group;
}

std::vector<GroupId> GroupSchema::PathToRoot(ObjectId object) const {
  std::vector<GroupId> path;
  GroupId g = GroupOf(object);
  path.push_back(g);
  while (g != kRootGroup) {
    g = parents_[g];
    path.push_back(g);
  }
  return path;
}

size_t GroupSchema::depth() const {
  size_t max_depth = 1;
  for (GroupId g = 0; g < parents_.size(); ++g) {
    size_t d = 1;
    GroupId cur = g;
    while (cur != kRootGroup) {
      cur = parents_[cur];
      ++d;
    }
    max_depth = std::max(max_depth, d);
  }
  return max_depth;
}

}  // namespace esr
