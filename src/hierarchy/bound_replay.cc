#include "hierarchy/bound_replay.h"

#include <algorithm>
#include <cmath>

namespace esr {

BoundWalkReplayer::Outcome BoundWalkReplayer::OnEvent(
    const TraceEvent& event) {
  Outcome outcome;
  if (event.type == TraceEventType::kCommit ||
      event.type == TraceEventType::kAbort) {
    ReleaseTxn(event.txn);
    return outcome;
  }
  if (event.type != TraceEventType::kBoundCheck) return outcome;

  const bool admitted = (event.detail & 1) != 0;
  const int dir = (event.detail >> 1) & 1;
  const ReplayKey key{event.txn, dir};
  pending_[key].push_back(PendingNode{event.target, event.level,
                                      event.ts_micros, event.charged,
                                      event.limit});
  if (!admitted) {
    // Bottom-up short-circuit: the walk ends at the first reject and
    // nothing is charged.
    pending_.erase(key);
    ++walks_replayed_;
    outcome.walk_completed = true;
    return outcome;
  }
  if (event.level != 0) return outcome;  // walk still climbing to the root

  auto& acc = replay_[key];
  for (const PendingNode& node : pending_[key]) {
    const double next = acc[node.group] + node.charge;
    const double slack = 1e-9 * std::max(1.0, std::fabs(node.limit)) + 1e-12;
    if (node.limit != kUnbounded && next > node.limit + slack) {
      const auto vkey = std::make_pair(key, node.group);
      auto it = violation_index_.find(vkey);
      if (it == violation_index_.end()) {
        violation_index_[vkey] = violations_.size();
        outcome.new_violation = static_cast<int>(violations_.size());
        BoundViolation v;
        v.txn = event.txn;
        v.direction = static_cast<ChargeDirection>(dir);
        v.group = node.group;
        v.level = node.level;
        v.ts_begin = node.ts;
        v.accumulated = next;
        v.limit = node.limit;
        violations_.push_back(v);
      } else {
        // Still above the limit: remember how far it eventually got.
        BoundViolation& v = violations_[it->second];
        v.accumulated = std::max(v.accumulated, next);
      }
    }
    acc[node.group] = next;
    ++charges_applied_;
  }
  pending_.erase(key);
  ++walks_replayed_;
  outcome.walk_completed = true;
  return outcome;
}

void BoundWalkReplayer::ReleaseTxn(TxnId txn) {
  for (int dir = 0; dir < 2; ++dir) {
    replay_.erase(ReplayKey{txn, dir});
    pending_.erase(ReplayKey{txn, dir});
  }
  // The dedup index keeps already-recorded violations addressable while
  // the transaction is live; once it ends no further charge can reference
  // them, so drop the entries (the violations themselves stay recorded).
  auto it = violation_index_.lower_bound({ReplayKey{txn, 0}, 0});
  while (it != violation_index_.end() && it->first.first.first == txn) {
    it = violation_index_.erase(it);
  }
}

}  // namespace esr
