#ifndef ESR_HIERARCHY_BOUND_REPLAY_H_
#define ESR_HIERARCHY_BOUND_REPLAY_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "hierarchy/accumulator.h"
#include "obs/trace.h"

namespace esr {

/// One recertification failure: the engine admitted a charge that pushed a
/// hierarchy node past its declared limit. On a correct engine this never
/// happens — the replayers exist to prove that from the trace alone, and to
/// catch it when a bug (or an injected history) breaks the invariant.
struct BoundViolation {
  TxnId txn = 0;
  ChargeDirection direction = ChargeDirection::kImport;
  /// Violated hierarchy node (GroupId) and its depth (0 = root).
  uint64_t group = 0;
  uint16_t level = 0;
  /// Interval during which the node sat above its limit: from the
  /// admitting check that crossed it to the transaction's end (or the
  /// last trace event when the end was not captured).
  int64_t ts_begin = 0;
  int64_t ts_end = 0;
  /// Replayed accumulation after the offending charge, vs the limit.
  double accumulated = 0.0;
  double limit = 0.0;
};

/// Incremental replay of Sec. 5.3.1's bottom-up bound-check protocol from a
/// BoundCheck event stream: nodes of a walk buffer until the root (level 0)
/// verdict; an admitted root applies every buffered charge to the replayed
/// accumulators, a reject discards the walk. A violation is an *admitted*
/// node whose replayed accumulation exceeds the limit the event itself
/// declared.
///
/// This is the single recertification core shared by the offline auditor
/// (AuditTrace) and the streaming certifier (StreamCertifier): both feed
/// their event streams through OnEvent, so their verdicts are identical by
/// construction. Accumulators are keyed per (transaction, direction), so
/// the violation set is invariant under any reordering that preserves each
/// transaction's own event order — the property the schedule-perturbation
/// hunter relies on.
///
/// Truncated traces (ring wraparound) can only under-count accumulation, so
/// a certified verdict on a lossy trace is still sound — lost history never
/// manufactures a false violation.
class BoundWalkReplayer {
 public:
  struct Outcome {
    /// A walk reached its verdict at this event (root admit or any reject).
    bool walk_completed = false;
    /// Index into violations() when this event pushed a node past its limit
    /// for the first time; -1 otherwise. Repeat crossings of an
    /// already-flagged node only raise that violation's recorded peak.
    int new_violation = -1;
  };

  /// Feeds one event, in stream order. kBoundCheck events drive the
  /// replay; kCommit / kAbort release the finished transaction's replay
  /// state (its per-transaction accumulators can never be charged again),
  /// keeping streaming memory proportional to the in-flight population.
  /// All other event types are ignored.
  Outcome OnEvent(const TraceEvent& event);

  size_t walks_replayed() const { return walks_replayed_; }
  size_t charges_applied() const { return charges_applied_; }
  const std::vector<BoundViolation>& violations() const { return violations_; }
  /// Mutable access for callers that resolve ts_end once the stream ends.
  std::vector<BoundViolation>* mutable_violations() { return &violations_; }

 private:
  /// One node of an in-flight walk awaiting its root verdict.
  struct PendingNode {
    uint64_t group = 0;
    uint16_t level = 0;
    int64_t ts = 0;
    double charge = 0.0;
    double limit = 0.0;
  };

  /// Replay state is keyed per (transaction, accumulator direction):
  /// import and export accumulators have independent bounds.
  using ReplayKey = std::pair<TxnId, int>;

  void ReleaseTxn(TxnId txn);

  std::map<ReplayKey, std::unordered_map<uint64_t, double>> replay_;
  std::map<ReplayKey, std::vector<PendingNode>> pending_;
  /// First crossing per (txn, dir, group) so a node that stays above its
  /// limit yields one violation, not one per subsequent charge.
  std::map<std::pair<ReplayKey, uint64_t>, size_t> violation_index_;
  size_t walks_replayed_ = 0;
  size_t charges_applied_ = 0;
  std::vector<BoundViolation> violations_;
};

}  // namespace esr

#endif  // ESR_HIERARCHY_BOUND_REPLAY_H_
