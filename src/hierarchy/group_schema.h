#ifndef ESR_HIERARCHY_GROUP_SCHEMA_H_
#define ESR_HIERARCHY_GROUP_SCHEMA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/flat_map.h"
#include "common/result.h"
#include "common/types.h"

namespace esr {

/// Identifier of a node in the group hierarchy. Node 0 is always the root
/// and represents the transaction level (TIL/TEL live there).
using GroupId = uint32_t;

inline constexpr GroupId kRootGroup = 0;
inline constexpr GroupId kInvalidGroup = UINT32_MAX;

/// The database's group hierarchy (paper Sec. 3.1): data items are grouped
/// by commonality — e.g. a bank's accounts into company / preferred /
/// personal categories, each subdivided further — and inconsistency limits
/// can be attached to any node. Objects live at the leaves; interior nodes
/// represent groups; the root represents the whole transaction.
///
/// The schema itself is shared, immutable-after-build metadata; the
/// per-transaction limits and accumulated inconsistency live in
/// `BoundSpec` and `InconsistencyAccumulator`.
class GroupSchema {
 public:
  /// Creates a schema containing only the root group ("overall"). With no
  /// further groups this degenerates to the paper's two-level prototype
  /// configuration: transaction level + object level.
  GroupSchema();

  /// Adds a group under `parent`. Names must be unique.
  Result<GroupId> AddGroup(const std::string& name, GroupId parent);

  /// Places an object under a group. Objects not assigned anywhere hang
  /// directly off the root. Reassignment is allowed before execution
  /// starts.
  Status AssignObject(ObjectId object, GroupId group);

  /// Relative weight of a group: the inconsistency charged to a node is
  /// d * weight(node), implementing the paper's weighted-sum variant
  /// ("bounds could also be specified using relative weights"). Default 1.
  Status SetWeight(GroupId group, double weight);

  size_t num_groups() const { return parents_.size(); }
  bool Contains(GroupId group) const { return group < parents_.size(); }

  GroupId parent(GroupId group) const { return parents_[group]; }
  const std::string& name(GroupId group) const { return names_[group]; }
  double weight(GroupId group) const { return weights_[group]; }

  Result<GroupId> FindGroup(const std::string& name) const;

  /// Group an object is directly assigned to (root if unassigned).
  GroupId GroupOf(ObjectId object) const;

  /// Nodes from the object's group up to and including the root — the
  /// bottom-up control path of Sec. 5.3.1.
  std::vector<GroupId> PathToRoot(ObjectId object) const;

  /// Number of levels on the longest root-to-group path (root alone = 1).
  size_t depth() const;

 private:
  std::vector<GroupId> parents_;   // parents_[0] == kRootGroup (self)
  std::vector<std::string> names_;
  std::vector<double> weights_;
  std::unordered_map<std::string, GroupId> by_name_;
  // On the accumulator charge path (GroupOf per TryCharge); flat layout
  // keeps the lookup to one probe.
  FlatMap<ObjectId, GroupId> object_groups_;
};

}  // namespace esr

#endif  // ESR_HIERARCHY_GROUP_SCHEMA_H_
