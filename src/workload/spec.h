#ifndef ESR_WORKLOAD_SPEC_H_
#define ESR_WORKLOAD_SPEC_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"
#include "hierarchy/bound_spec.h"

namespace esr {

/// One operation of a transaction script. Write values are computed at
/// run time from earlier reads ("the value of the writes are dependent
/// upon the reads", Sec. 3.2.1), so a write op names the read it derives
/// from plus an additive delta.
struct ScriptOp {
  enum class Kind : uint8_t { kRead = 0, kWrite = 1 };

  Kind kind = Kind::kRead;
  ObjectId object = kInvalidObjectId;
  /// For writes: index (into this script's reads, in order) of the read
  /// whose result feeds this write.
  int32_t source_read = -1;
  /// For writes: additive change applied to the source value; its mean
  /// magnitude is the paper's w, the average change in value due to a
  /// write (Sec. 8).
  Value delta = 0;
};

/// A randomly generated transaction, as stored in the clients' load files
/// (Sec. 6). The client resubmits the same script with a fresh timestamp
/// until it commits.
struct TxnScript {
  TxnType type = TxnType::kQuery;
  /// Hierarchical inconsistency declaration; root limit is TIL or TEL.
  BoundSpec bounds;
  /// Import budget for update ETs (Sec. 1 generalization); 0 keeps the
  /// paper's consistent update ETs. Ignored for queries.
  Inconsistency update_import_limit = 0;
  std::vector<ScriptOp> ops;

  int64_t num_reads() const;
  int64_t num_writes() const;
};

/// Statistical shape of the generated load, defaulting to the paper's
/// settings (Secs. 6-7).
struct WorkloadSpec {
  /// Database population; about 1000 objects in the paper.
  size_t num_objects = 1000;
  /// "Most of our transactions accessed only about 20 objects to create a
  /// high conflict ratio."
  size_t hot_set_size = 20;
  /// Probability that a query read goes to the hot set. Queries scan the
  /// small hot set almost exclusively, which is what makes the conflict
  /// ratio high enough to thrash within MPL 10.
  double query_hot_prob = 0.97;
  /// Hot-set probabilities for update ETs, split by operation: the
  /// paper's update ETs read some objects and write *different* ones
  /// ("Read 1923 ... Write 1078, t2+3000"). Writes concentrate on the hot
  /// set (creating the query/update conflicts ESR relaxes), while reads
  /// spread wide — that keeps update-update conflicts rare, which is what
  /// lets aborts go to ~zero at high epsilon as the paper observes.
  double update_read_hot_prob = 0.5;
  double update_write_hot_prob = 1.0;

  /// Fraction of transactions that are query ETs.
  double query_fraction = 0.6;

  /// Query ETs have about 20 operations (all reads, computing a sum).
  int64_t query_ops_min = 16;
  int64_t query_ops_max = 24;
  /// Update ETs have about 6 operations (reads feeding writes).
  int64_t update_ops_min = 4;
  int64_t update_ops_max = 8;

  /// Write deltas follow a two-point mixture, reflecting the paper's
  /// domain: "typical updates refer to small amounts compared to the
  /// query's results" while its example update ETs write thousands
  /// (t2+3000, t1+t4+7935). A write is small with probability
  /// (1 - large_delta_prob) — magnitude uniform in ±[s/2, 3s/2] with
  /// s = small_write_delta — and large otherwise, uniform in
  /// ±[L/2, 3L/2] with L = large_write_delta. The paper's w (average
  /// change due to a write) is the mixture mean, `MeanWriteDelta()`.
  Value small_write_delta = 250;
  Value large_write_delta = 5000;
  double large_delta_prob = 0.1;

  /// w: the mean write-delta magnitude of the mixture.
  double MeanWriteDelta() const {
    return (1.0 - large_delta_prob) * static_cast<double>(small_write_delta) +
           large_delta_prob * static_cast<double>(large_write_delta);
  }
  /// Object values stay within this range (reads/writes reflect at the
  /// edges); the paper's values range over [1000, 9999].
  Value min_value = 1000;
  Value max_value = 9999;

  /// Transaction-level bounds attached to generated scripts.
  Inconsistency til = 100'000;
  Inconsistency tel = 10'000;
  /// Import budget given to update ETs (0 = the paper's consistent
  /// updates; the ablation bench sweeps this).
  Inconsistency update_import_til = 0;

  /// Optional hook to build richer (hierarchical) bound declarations; when
  /// set it overrides til/tel.
  std::function<BoundSpec(TxnType)> bound_factory;
};

}  // namespace esr

#endif  // ESR_WORKLOAD_SPEC_H_
