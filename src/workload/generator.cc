#include "workload/generator.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace esr {

WorkloadGenerator::WorkloadGenerator(const WorkloadSpec& spec, uint64_t seed)
    : spec_(spec), rng_(seed) {
  ESR_CHECK(spec_.num_objects > spec_.hot_set_size);
  ESR_CHECK(spec_.query_ops_min >= 1 &&
            spec_.query_ops_min <= spec_.query_ops_max);
  ESR_CHECK(spec_.update_ops_min >= 2 &&
            spec_.update_ops_min <= spec_.update_ops_max);
}

TxnScript WorkloadGenerator::Next() {
  return rng_.Bernoulli(spec_.query_fraction) ? NextQuery() : NextUpdate();
}

TxnScript WorkloadGenerator::NextQuery() {
  TxnScript script;
  script.type = TxnType::kQuery;
  script.bounds = BoundsFor(TxnType::kQuery);
  const size_t n = static_cast<size_t>(
      rng_.UniformInt(spec_.query_ops_min, spec_.query_ops_max));
  for (const ObjectId object : SampleObjects(n, spec_.query_hot_prob)) {
    ScriptOp op;
    op.kind = ScriptOp::Kind::kRead;
    op.object = object;
    script.ops.push_back(op);
  }
  return script;
}

TxnScript WorkloadGenerator::NextUpdate() {
  TxnScript script;
  script.type = TxnType::kUpdate;
  script.bounds = BoundsFor(TxnType::kUpdate);
  script.update_import_limit = spec_.update_import_til;
  const int64_t total =
      rng_.UniformInt(spec_.update_ops_min, spec_.update_ops_max);
  // Roughly half reads, half writes; at least one of each. The paper's
  // example update ETs interleave, with writes derived from earlier reads.
  const int64_t num_reads = std::max<int64_t>(1, total / 2);
  const int64_t num_writes = std::max<int64_t>(1, total - num_reads);
  // Reads and writes target disjoint objects, with different hot-set
  // affinity each (see WorkloadSpec).
  std::vector<ObjectId> objects =
      SampleObjects(static_cast<size_t>(num_reads),
                    spec_.update_read_hot_prob);
  {
    std::vector<ObjectId> write_objects = SampleObjects(
        static_cast<size_t>(num_writes), spec_.update_write_hot_prob);
    objects.insert(objects.end(), write_objects.begin(),
                   write_objects.end());
  }

  for (int64_t i = 0; i < num_reads; ++i) {
    ScriptOp op;
    op.kind = ScriptOp::Kind::kRead;
    op.object = objects[static_cast<size_t>(i)];
    script.ops.push_back(op);
  }
  for (int64_t i = 0; i < num_writes; ++i) {
    ScriptOp op;
    op.kind = ScriptOp::Kind::kWrite;
    op.object = objects[static_cast<size_t>(num_reads + i)];
    op.source_read = static_cast<int32_t>(rng_.UniformInt(0, num_reads - 1));
    // Two-point delta mixture (see WorkloadSpec): |delta| uniform in
    // [m/2, 3m/2] around the chosen magnitude class, random sign.
    const Value m = rng_.Bernoulli(spec_.large_delta_prob)
                        ? spec_.large_write_delta
                        : spec_.small_write_delta;
    const Value magnitude = rng_.UniformInt(m / 2, m + m / 2);
    op.delta = rng_.Bernoulli(0.5) ? magnitude : -magnitude;
    script.ops.push_back(op);
  }
  return script;
}

std::vector<TxnScript> WorkloadGenerator::MakeLoad(size_t n) {
  std::vector<TxnScript> load;
  load.reserve(n);
  for (size_t i = 0; i < n; ++i) load.push_back(Next());
  return load;
}

std::vector<ObjectId> WorkloadGenerator::SampleObjects(size_t n,
                                                        double hot_prob) {
  ESR_CHECK(n <= spec_.num_objects);
  std::vector<ObjectId> objects;
  std::unordered_set<ObjectId> seen;
  objects.reserve(n);
  while (objects.size() < n) {
    const ObjectId candidate = SampleOneObject(hot_prob);
    if (seen.insert(candidate).second) objects.push_back(candidate);
  }
  return objects;
}

ObjectId WorkloadGenerator::SampleOneObject(double hot_prob) {
  if (rng_.Bernoulli(hot_prob)) {
    return static_cast<ObjectId>(
        rng_.UniformInt(0, static_cast<int64_t>(spec_.hot_set_size) - 1));
  }
  return static_cast<ObjectId>(
      rng_.UniformInt(static_cast<int64_t>(spec_.hot_set_size),
                      static_cast<int64_t>(spec_.num_objects) - 1));
}

BoundSpec WorkloadGenerator::BoundsFor(TxnType type) {
  if (spec_.bound_factory) return spec_.bound_factory(type);
  return BoundSpec::TransactionOnly(type == TxnType::kQuery ? spec_.til
                                                            : spec_.tel);
}

Value ApplyDeltaReflecting(Value base, Value delta, Value min_value,
                           Value max_value) {
  Value v = base + delta;
  // Reflect at the range edges; two passes suffice for |delta| <= range.
  for (int i = 0; i < 2; ++i) {
    if (v > max_value) {
      v = max_value - (v - max_value);
    } else if (v < min_value) {
      v = min_value + (min_value - v);
    }
  }
  return std::clamp(v, min_value, max_value);
}

}  // namespace esr
