#include "workload/spec.h"

#include <algorithm>

namespace esr {

int64_t TxnScript::num_reads() const {
  return std::count_if(ops.begin(), ops.end(), [](const ScriptOp& op) {
    return op.kind == ScriptOp::Kind::kRead;
  });
}

int64_t TxnScript::num_writes() const {
  return static_cast<int64_t>(ops.size()) - num_reads();
}

}  // namespace esr
