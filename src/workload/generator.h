#ifndef ESR_WORKLOAD_GENERATOR_H_
#define ESR_WORKLOAD_GENERATOR_H_

#include <vector>

#include "common/random.h"
#include "workload/spec.h"

namespace esr {

/// Produces the randomly generated transaction load of the performance
/// tests: a stream of query ETs (reads computing a sum) and update ETs
/// (reads feeding writes), with hot-set skewed object access and the
/// paper's size distributions. Deterministic given (spec, seed).
class WorkloadGenerator {
 public:
  WorkloadGenerator(const WorkloadSpec& spec, uint64_t seed);

  /// Next transaction, query with probability spec.query_fraction.
  TxnScript Next();

  TxnScript NextQuery();
  TxnScript NextUpdate();

  /// A whole load file of `n` transactions.
  std::vector<TxnScript> MakeLoad(size_t n);

  const WorkloadSpec& spec() const { return spec_; }

 private:
  /// Samples `n` distinct objects with the hot-set access skew (one read
  /// per object per transaction, Sec. 3.2.1).
  std::vector<ObjectId> SampleObjects(size_t n, double hot_prob);
  ObjectId SampleOneObject(double hot_prob);
  BoundSpec BoundsFor(TxnType type);

  WorkloadSpec spec_;
  Rng rng_;
};

/// Applies a write delta while keeping the value inside
/// [spec.min_value, spec.max_value] by reflecting at the edges, so object
/// values random-walk within the paper's 1000..9999 range.
Value ApplyDeltaReflecting(Value base, Value delta, Value min_value,
                           Value max_value);

}  // namespace esr

#endif  // ESR_WORKLOAD_GENERATOR_H_
