#include "mvto/mvto_manager.h"

#include <string>

#include "common/logging.h"
#include "obs/trace.h"

namespace esr {

MvtoManager::MvtoManager(const ObjectStoreOptions& store_options,
                         const GroupSchema* schema, MetricRegistry* metrics)
    : schema_(schema),
      metrics_(metrics),
      store_(store_options),
      counters_(metrics) {
  ESR_CHECK(schema_ != nullptr);
  ESR_CHECK(metrics_ != nullptr);
}

TxnId MvtoManager::Begin(TxnType type, Timestamp ts,
                         const BoundSpec& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  const TxnId id = next_txn_id_++;
  auto [t, inserted] = transactions_.TryEmplace(
      id, Transaction(id, type, ts, schema_, bounds));
  t->set_trace_span(BeginSpan(SpanKind::kTxn, id, ts.site));
  counters_.BeginFor(type)->Increment();
  ESR_TRACE_EVENT(
      WithSpan(TraceEvent::BeginTxn(id, type, ts.site), t->trace_span()));
  return id;
}

OpResult MvtoManager::Read(TxnId txn, ObjectId object) {
  std::lock_guard<std::mutex> lock(mu_);
  Transaction& t = GetActive(txn);
  TraceSpan op_span(SpanKind::kOp, txn, t.ts().site, object, t.trace_span());
  VersionChain& chain = store_.Get(object);
  const VersionChain::ReadResult r = chain.Read(t.ts(), t.id());
  switch (r.status) {
    case VersionChain::ReadStatus::kOk: {
      t.ObserveValue(object, r.value);
      t.CountOp();
      counters_.op_read->Increment();
      ESR_TRACE_EVENT(TraceEvent::Op(TraceEventType::kRead, t.id(),
                                     t.ts().site, object));
      return OpResult::Ok(r.value, 0.0, /*was_relaxed=*/false);
    }
    case VersionChain::ReadStatus::kWaitForWriter:
      counters_.op_wait->Increment();
      ESR_TRACE_EVENT(
          TraceEvent::WaitOn(t.id(), t.ts().site, object, r.writer));
      ESR_TRACE_EVENT(TraceEvent::Flow(TraceEventType::kFlowBegin, r.writer,
                                       t.id(), t.ts().site));
      return OpResult::Wait(r.writer);
    case VersionChain::ReadStatus::kTooOld:
      return AbortOp(t, AbortReason::kHistoryExhausted);
  }
  ESR_LOG(kFatal) << "unreachable MVTO read status";
  return OpResult::Abort(AbortReason::kNone);
}

OpResult MvtoManager::Write(TxnId txn, ObjectId object, Value value) {
  std::lock_guard<std::mutex> lock(mu_);
  Transaction& t = GetActive(txn);
  ESR_CHECK(t.type() == TxnType::kUpdate)
      << "query ETs are read-only; Write from txn " << t.id();
  TraceSpan op_span(SpanKind::kOp, txn, t.ts().site, object, t.trace_span());
  VersionChain& chain = store_.Get(object);
  const VersionChain::WriteResult r = chain.Write(t.ts(), t.id(), value);
  switch (r.status) {
    case VersionChain::WriteStatus::kOk: {
      t.NotePendingWrite(object);
      t.CountOp();
      counters_.op_write->Increment();
      ESR_TRACE_EVENT(TraceEvent::Op(TraceEventType::kWrite, t.id(),
                                     t.ts().site, object));
      return OpResult::Ok(value, 0.0, /*was_relaxed=*/false);
    }
    case VersionChain::WriteStatus::kWaitForWriter:
      counters_.op_wait->Increment();
      ESR_TRACE_EVENT(
          TraceEvent::WaitOn(t.id(), t.ts().site, object, r.conflict));
      ESR_TRACE_EVENT(TraceEvent::Flow(TraceEventType::kFlowBegin,
                                       r.conflict, t.id(), t.ts().site));
      return OpResult::Wait(r.conflict);
    case VersionChain::WriteStatus::kReadByNewer:
      return AbortOp(t, AbortReason::kLateWrite);
    case VersionChain::WriteStatus::kTooOld:
      return AbortOp(t, AbortReason::kHistoryExhausted);
  }
  ESR_LOG(kFatal) << "unreachable MVTO write status";
  return OpResult::Abort(AbortReason::kNone);
}

Status MvtoManager::Commit(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  Transaction* t = transactions_.Find(txn);
  if (t == nullptr) {
    return Status::FailedPrecondition("transaction " + std::to_string(txn) +
                                      " is not active");
  }
  TraceSpan commit_span(SpanKind::kCommit, txn, t->ts().site, 0,
                        t->trace_span());
  Teardown(*t, TxnState::kCommitted, AbortReason::kNone);
  return Status::OK();
}

Status MvtoManager::Abort(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  Transaction* t = transactions_.Find(txn);
  if (t == nullptr) {
    return Status::FailedPrecondition("transaction " + std::to_string(txn) +
                                      " is not active");
  }
  TraceSpan commit_span(SpanKind::kCommit, txn, t->ts().site, 0,
                        t->trace_span());
  Teardown(*t, TxnState::kAborted, AbortReason::kUserRequested);
  return Status::OK();
}

bool MvtoManager::IsActive(TxnId txn) const {
  std::lock_guard<std::mutex> lock(mu_);
  return transactions_.Contains(txn);
}

const Transaction* MvtoManager::Find(TxnId txn) const {
  std::lock_guard<std::mutex> lock(mu_);
  return transactions_.Find(txn);
}

size_t MvtoManager::num_active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return transactions_.size();
}

Transaction& MvtoManager::GetActive(TxnId txn) {
  Transaction* t = transactions_.Find(txn);
  ESR_CHECK(t != nullptr)
      << "operation on unknown/finished transaction " << txn;
  return *t;
}

OpResult MvtoManager::AbortOp(Transaction& txn, AbortReason reason) {
  Teardown(txn, TxnState::kAborted, reason);
  return OpResult::Abort(reason);
}

void MvtoManager::Teardown(Transaction& txn, TxnState final_state,
                           AbortReason reason) {
  for (const ObjectId object : txn.pending_writes()) {
    if (final_state == TxnState::kCommitted) {
      store_.Get(object).CommitVersions(txn.id());
    } else {
      store_.Get(object).AbortVersions(txn.id());
    }
  }
  if (final_state == TxnState::kCommitted) {
    counters_.CommitFor(txn.type())->Increment();
    ESR_TRACE_EVENT(TraceEvent::CommitTxn(txn.id(), txn.ts().site));
  } else {
    counters_.txn_abort->Increment();
    counters_.AbortFor(reason)->Increment();
    ESR_TRACE_EVENT(TraceEvent::AbortTxn(txn.id(), txn.ts().site,
                                         static_cast<uint8_t>(reason)));
  }
  if (!txn.pending_writes().empty()) {
    ESR_TRACE_EVENT(TraceEvent::Flow(TraceEventType::kFlowEnd, txn.id(),
                                     txn.id(), txn.ts().site));
  }
  EndSpan(SpanKind::kTxn, txn.trace_span(), txn.id(), txn.ts().site);
  // Last touch of `txn`: backward-shift erase moves neighbors and leaves
  // the reference dangling.
  transactions_.Erase(txn.id());
}

}  // namespace esr
