#ifndef ESR_MVTO_VERSION_STORE_H_
#define ESR_MVTO_VERSION_STORE_H_

#include <optional>
#include <vector>

#include "common/timestamp.h"
#include "common/types.h"
#include "storage/object_store.h"

namespace esr {

/// One timestamped version of an object under MVTO.
struct Version {
  Timestamp wts;          // timestamp of the writing transaction
  Timestamp max_read_ts;  // largest ts that read this version
  Value value = 0;
  TxnId writer = kInvalidTxnId;
  bool committed = false;
};

/// Per-object version chain for multiversion timestamp ordering, the
/// scheme Sec. 5.1 contrasts with the paper's proper-value mechanism:
/// "timestamped versions are maintained so that if a read operation
/// arrives late, based on the versions, the value written by the last
/// write with a timestamp lesser than this read is returned".
///
/// The chain is bounded (like the paper's depth-20 history): reads older
/// than the oldest retained version fail with "history exhausted".
class VersionChain {
 public:
  explicit VersionChain(Value initial_value, size_t depth);

  /// What happened when a version was looked up for a read.
  enum class ReadStatus : uint8_t {
    kOk = 0,
    /// The governing version is uncommitted: wait for its writer.
    kWaitForWriter = 1,
    /// The chain no longer reaches back to this timestamp.
    kTooOld = 2,
  };
  struct ReadResult {
    ReadStatus status = ReadStatus::kOk;
    Value value = 0;
    TxnId writer = kInvalidTxnId;
  };

  /// MVTO read rule: the version with the largest wts <= ts governs.
  /// Committed: return its value and raise its max_read_ts to ts.
  /// Uncommitted by another txn: wait (reading it would create a
  /// commit dependency); by `reader` itself: return it.
  ReadResult Read(Timestamp ts, TxnId reader);

  /// What happened when a write tried to install a version.
  enum class WriteStatus : uint8_t {
    kOk = 0,
    /// The predecessor version was already read by a newer transaction;
    /// installing this version would invalidate that read. Abort.
    kReadByNewer = 1,
    /// The predecessor version is uncommitted: strict ordering, wait.
    kWaitForWriter = 2,
    /// The insertion point fell off the bounded chain.
    kTooOld = 3,
  };
  struct WriteResult {
    WriteStatus status = WriteStatus::kOk;
    TxnId conflict = kInvalidTxnId;
  };

  /// MVTO write rule at timestamp ts: find the predecessor (largest
  /// wts < ts, ignoring the writer's own versions); reject if its
  /// max_read_ts > ts; install an uncommitted version otherwise. A
  /// transaction may overwrite its own pending version.
  WriteResult Write(Timestamp ts, TxnId writer, Value value);

  /// Marks `writer`'s pending versions committed.
  void CommitVersions(TxnId writer);
  /// Removes `writer`'s pending versions.
  void AbortVersions(TxnId writer);

  /// Latest committed value (for non-transactional peeks).
  Value LatestCommittedValue() const;

  size_t size() const { return versions_.size(); }
  const std::vector<Version>& versions() const { return versions_; }

 private:
  void TrimToDepth();

  size_t depth_;
  // Sorted by wts ascending.
  std::vector<Version> versions_;
};

/// The MVTO engine's database: one version chain per object, seeded with
/// the same initial values an ObjectStore built from `options` would
/// hold, so cross-engine comparisons start from identical states.
class VersionStore {
 public:
  explicit VersionStore(const ObjectStoreOptions& options);

  size_t size() const { return chains_.size(); }
  bool Contains(ObjectId id) const { return id < chains_.size(); }
  VersionChain& Get(ObjectId id);

 private:
  std::vector<VersionChain> chains_;
};

}  // namespace esr

#endif  // ESR_MVTO_VERSION_STORE_H_
