#include "mvto/version_store.h"

#include <algorithm>

#include "common/logging.h"

namespace esr {

VersionChain::VersionChain(Value initial_value, size_t depth)
    : depth_(std::max<size_t>(depth, 1)) {
  Version seed;
  seed.wts = Timestamp::Min();
  seed.max_read_ts = Timestamp::Min();
  seed.value = initial_value;
  seed.committed = true;
  versions_.push_back(seed);
}

VersionChain::ReadResult VersionChain::Read(Timestamp ts, TxnId reader) {
  // Governing version: largest wts <= ts.
  Version* governing = nullptr;
  for (auto it = versions_.rbegin(); it != versions_.rend(); ++it) {
    if (it->wts <= ts) {
      governing = &*it;
      break;
    }
  }
  ReadResult result;
  if (governing == nullptr) {
    result.status = ReadStatus::kTooOld;
    return result;
  }
  if (!governing->committed && governing->writer != reader) {
    result.status = ReadStatus::kWaitForWriter;
    result.writer = governing->writer;
    return result;
  }
  result.status = ReadStatus::kOk;
  result.value = governing->value;
  governing->max_read_ts = std::max(governing->max_read_ts, ts);
  return result;
}

VersionChain::WriteResult VersionChain::Write(Timestamp ts, TxnId writer,
                                              Value value) {
  WriteResult result;

  // A transaction may blind-overwrite its own pending version.
  for (Version& version : versions_) {
    if (!version.committed && version.writer == writer) {
      version.value = value;
      version.wts = ts;
      std::sort(versions_.begin(), versions_.end(),
                [](const Version& a, const Version& b) {
                  return a.wts < b.wts;
                });
      return result;
    }
  }

  // Predecessor: version with the largest wts < ts.
  Version* predecessor = nullptr;
  for (auto it = versions_.rbegin(); it != versions_.rend(); ++it) {
    if (it->wts < ts) {
      predecessor = &*it;
      break;
    }
  }
  if (predecessor == nullptr) {
    result.status = WriteStatus::kTooOld;
    return result;
  }
  if (!predecessor->committed) {
    // Strict ordering between writers of adjacent versions.
    result.status = WriteStatus::kWaitForWriter;
    result.conflict = predecessor->writer;
    return result;
  }
  if (predecessor->max_read_ts > ts) {
    // A newer reader already saw the predecessor; this write arrived too
    // late to be serialized before that read.
    result.status = WriteStatus::kReadByNewer;
    return result;
  }

  Version fresh;
  fresh.wts = ts;
  fresh.max_read_ts = ts;
  fresh.value = value;
  fresh.writer = writer;
  fresh.committed = false;
  auto pos = std::upper_bound(
      versions_.begin(), versions_.end(), ts,
      [](Timestamp t, const Version& v) { return t < v.wts; });
  versions_.insert(pos, fresh);
  return result;
}

void VersionChain::CommitVersions(TxnId writer) {
  for (Version& version : versions_) {
    if (version.writer == writer) version.committed = true;
  }
  TrimToDepth();
}

void VersionChain::AbortVersions(TxnId writer) {
  versions_.erase(
      std::remove_if(versions_.begin(), versions_.end(),
                     [writer](const Version& v) {
                       return !v.committed && v.writer == writer;
                     }),
      versions_.end());
}

Value VersionChain::LatestCommittedValue() const {
  for (auto it = versions_.rbegin(); it != versions_.rend(); ++it) {
    if (it->committed) return it->value;
  }
  ESR_LOG(kFatal) << "version chain without a committed version";
  return 0;
}

void VersionChain::TrimToDepth() {
  // Never evict uncommitted versions or the last committed one.
  while (versions_.size() > depth_ && versions_.front().committed) {
    versions_.erase(versions_.begin());
  }
}

VersionStore::VersionStore(const ObjectStoreOptions& options) {
  // Seed values exactly as ObjectStore would, so engines are comparable.
  ObjectStore seed(options);
  chains_.reserve(seed.size());
  for (ObjectId id = 0; id < seed.size(); ++id) {
    chains_.emplace_back(seed.Get(id).value(), options.history_depth);
  }
}

VersionChain& VersionStore::Get(ObjectId id) {
  ESR_CHECK(Contains(id)) << "object " << id << " out of range";
  return chains_[id];
}

}  // namespace esr
