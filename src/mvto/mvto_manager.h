#ifndef ESR_MVTO_MVTO_MANAGER_H_
#define ESR_MVTO_MVTO_MANAGER_H_

#include <mutex>
#include "common/flat_map.h"

#include "common/metrics.h"
#include "hierarchy/group_schema.h"
#include "mvto/version_store.h"
#include "txn/engine.h"

namespace esr {

/// Multiversion timestamp ordering — the comparator Sec. 5.1 explicitly
/// distinguishes from the paper's mechanism. Reads return the version
/// "written by the last write with a timestamp lesser than this read"
/// (never the present value), so query ETs observe a perfectly
/// serializable snapshot: zero inconsistency, no bound checks, and no
/// read-side aborts other than falling off the bounded version chain.
/// The price is version storage and stale answers; the comparison bench
/// quantifies the throughput side against TO-ESR and 2PL-ESR.
///
/// Inconsistency bounds are accepted but ignored (every answer is
/// consistent, i.e. within any bound).
class MvtoManager final : public TransactionEngine {
 public:
  MvtoManager(const ObjectStoreOptions& store_options,
              const GroupSchema* schema, MetricRegistry* metrics);

  MvtoManager(const MvtoManager&) = delete;
  MvtoManager& operator=(const MvtoManager&) = delete;

  TxnId Begin(TxnType type, Timestamp ts, const BoundSpec& bounds) override;
  OpResult Read(TxnId txn, ObjectId object) override;
  OpResult Write(TxnId txn, ObjectId object, Value value) override;
  Status Commit(TxnId txn) override;
  Status Abort(TxnId txn) override;
  bool IsActive(TxnId txn) const override;
  const Transaction* Find(TxnId txn) const override;
  size_t num_active() const override;
  EngineKind kind() const override { return EngineKind::kMultiversion; }

  VersionStore& store() { return store_; }

 private:
  Transaction& GetActive(TxnId txn);
  OpResult AbortOp(Transaction& txn, AbortReason reason);
  void Teardown(Transaction& txn, TxnState final_state, AbortReason reason);

  mutable std::mutex mu_;
  const GroupSchema* schema_;
  MetricRegistry* metrics_;
  VersionStore store_;
  TxnId next_txn_id_ = 1;
  FlatMap<TxnId, Transaction> transactions_;
  /// Hot-path counters resolved once at construction so per-operation
  /// accounting is an atomic increment, not a map lookup.
  EngineCounters counters_;
};

}  // namespace esr

#endif  // ESR_MVTO_MVTO_MANAGER_H_
