#include "cc/to_policy.h"

namespace esr {

const char* AbortReasonToString(AbortReason reason) {
  switch (reason) {
    case AbortReason::kNone:
      return "none";
    case AbortReason::kLateRead:
      return "late_read";
    case AbortReason::kLateWrite:
      return "late_write";
    case AbortReason::kObjectBound:
      return "object_bound";
    case AbortReason::kGroupBound:
      return "group_bound";
    case AbortReason::kTransactionBound:
      return "transaction_bound";
    case AbortReason::kHistoryExhausted:
      return "history_exhausted";
    case AbortReason::kUserRequested:
      return "user_requested";
    case AbortReason::kDeadlockVictim:
      return "deadlock_victim";
  }
  return "?";
}

ReadDecision DecideRead(const TxnView& txn, const ObjectRecord& object) {
  // Reads that may view inconsistency: ESR query ETs, plus update ETs
  // with a declared import budget (the Sec. 1 generalization).
  const bool may_import =
      (txn.type == TxnType::kQuery && txn.esr_enabled) ||
      (txn.type == TxnType::kUpdate && txn.import_enabled);

  if (object.has_uncommitted_write()) {
    if (object.uncommitted_writer() == txn.id) {
      // Reading one's own pending write is always consistent.
      return ReadDecision::kProceedConsistent;
    }
    if (may_import) {
      // Fig. 3 case 2: viewing uncommitted data from a concurrent update
      // ET, subject to the inconsistency checks.
      return ReadDecision::kRelaxUncommitted;
    }
    // Reads that must be consistent (plain update-ET reads, SR queries):
    // strict ordering makes newer requests wait for the writer; older
    // requests are late and abort.
    return txn.ts > object.write_ts() ? ReadDecision::kWait
                                      : ReadDecision::kAbortLate;
  }

  if (txn.ts >= object.write_ts()) {
    // On-time read of committed data.
    return ReadDecision::kProceedConsistent;
  }

  // Late read of committed data written after this transaction began:
  // Fig. 3 case 1 when the reader may import.
  if (may_import) return ReadDecision::kRelaxLateRead;
  return ReadDecision::kAbortLate;
}

WriteDecision DecideWrite(const TxnView& txn, const ObjectRecord& object) {
  if (object.has_uncommitted_write() &&
      object.uncommitted_writer() != txn.id) {
    // Strict ordering between writers: newer waits, older is late.
    return txn.ts > object.write_ts() ? WriteDecision::kWait
                                      : WriteDecision::kAbortLateWrite;
  }

  // Conflict with a consistent read from an update ET: reads from update
  // ETs feed their writes, so they must stay serializable (Sec. 4).
  if (txn.ts < object.update_read_ts()) {
    return WriteDecision::kAbortLateRead;
  }

  // Conflict with a newer committed write (blind write-write): updates
  // are consistent among themselves, so this always aborts.
  if (!object.has_uncommitted_write() && txn.ts < object.write_ts()) {
    return WriteDecision::kAbortLateWrite;
  }

  // Fig. 3 case 3: the last conflicting read came from a query ET.
  if (txn.ts < object.query_read_ts()) {
    return txn.esr_enabled ? WriteDecision::kRelaxLateWrite
                           : WriteDecision::kAbortLateRead;
  }

  return WriteDecision::kProceedConsistent;
}

}  // namespace esr
