#ifndef ESR_CC_TO_POLICY_H_
#define ESR_CC_TO_POLICY_H_

#include "common/timestamp.h"
#include "common/types.h"
#include "storage/object.h"

namespace esr {

/// Why the concurrency-control layer rejected an operation. Every abort is
/// followed by an immediate restart with a fresh timestamp at the client,
/// so aborts and retries are the same count (paper Sec. 7).
enum class AbortReason : uint8_t {
  kNone = 0,
  /// Late read under SR rules (timestamp older than the object's write ts).
  kLateRead,
  /// Late write conflicting with a consistent (update-ET) read or with a
  /// newer write.
  kLateWrite,
  /// The object-level bound (OIL/OEL) rejected the operation.
  kObjectBound,
  /// A group-level limit in the hierarchy rejected the operation.
  kGroupBound,
  /// The transaction-level bound (TIL/TEL) rejected the operation.
  kTransactionBound,
  /// The bounded write history no longer reaches back to the query's
  /// timestamp, so the proper value (and hence d) cannot be determined.
  kHistoryExhausted,
  /// Explicit abort requested by the client.
  kUserRequested,
  /// Killed by wait-die deadlock prevention (2PL engine only): the
  /// requester was younger than a conflicting lock holder.
  kDeadlockVictim,
};

inline constexpr size_t kNumAbortReasons =
    static_cast<size_t>(AbortReason::kDeadlockVictim) + 1;

const char* AbortReasonToString(AbortReason reason);

/// What the timestamp-ordering policy decides for a read request.
enum class ReadDecision : uint8_t {
  /// Serializable read: proceed, no inconsistency is viewed.
  kProceedConsistent,
  /// ESR case 1 (Fig. 3): a query read of *committed* data whose write
  /// timestamp is newer than the query — admit iff bounds allow.
  kRelaxLateRead,
  /// ESR case 2: a query read of *uncommitted* data from a concurrent
  /// update ET — admit iff bounds allow.
  kRelaxUncommitted,
  /// Strict ordering: wait until the uncommitted writer resolves.
  kWait,
  /// Late operation under SR rules: abort and restart.
  kAbortLate,
};

/// What the timestamp-ordering policy decides for a write request.
enum class WriteDecision : uint8_t {
  kProceedConsistent,
  /// ESR case 3 (Fig. 3): a write older than the object's last *query*
  /// read — admit iff export bounds allow.
  kRelaxLateWrite,
  /// Strict ordering: wait for the uncommitted writer to resolve.
  kWait,
  /// Conflicts with a consistent read from another update ET.
  kAbortLateRead,
  /// Conflicts with a newer (committed or pending) write.
  kAbortLateWrite,
};

/// The requesting transaction as the policy sees it.
struct TxnView {
  TxnId id = kInvalidTxnId;
  TxnType type = TxnType::kQuery;
  Timestamp ts;
  /// False when the transaction's bounds are all zero: ESR reduces to SR
  /// and the relaxation cases are never attempted (paper Sec. 2).
  bool esr_enabled = true;
  /// True for update ETs with a non-zero IMPORT budget (the Sec. 1
  /// generalization): their reads may relax like query reads.
  bool import_enabled = false;
};

/// Timestamp-ordering read rule with the ESR enhancements of Fig. 3.
/// Pure function of the request and the object's CC state; the caller
/// performs the inconsistency checks for the kRelax* outcomes.
ReadDecision DecideRead(const TxnView& txn, const ObjectRecord& object);

/// Timestamp-ordering write rule with the ESR enhancement (case 3).
/// Only update ETs write; the caller enforces that.
WriteDecision DecideWrite(const TxnView& txn, const ObjectRecord& object);

}  // namespace esr

#endif  // ESR_CC_TO_POLICY_H_
