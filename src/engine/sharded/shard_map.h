#ifndef ESR_ENGINE_SHARDED_SHARD_MAP_H_
#define ESR_ENGINE_SHARDED_SHARD_MAP_H_

#include <cstddef>

#include "common/types.h"

namespace esr {

/// Static object-id partitioning of the sharded engine: shard of an
/// object is `id mod num_shards` (the same identity hash FlatMap uses for
/// integer keys — object ids are already uniformly distributed, so a
/// mixing step would only cost the cheap inverse mapping), and within a
/// shard objects are stored densely at `id / num_shards`. The mapping is
/// a bijection, so every shard owns a dense local ObjectStore and global
/// ids round-trip exactly.
struct ShardMap {
  size_t num_shards = 1;
  size_t num_objects = 0;

  size_t ShardOf(ObjectId id) const {
    return static_cast<size_t>(id) % num_shards;
  }

  /// Dense index of `id` inside its shard's local store.
  ObjectId LocalId(ObjectId id) const {
    return id / static_cast<ObjectId>(num_shards);
  }

  /// Inverse of (ShardOf, LocalId).
  ObjectId GlobalId(size_t shard, ObjectId local) const {
    return local * static_cast<ObjectId>(num_shards) +
           static_cast<ObjectId>(shard);
  }

  /// Number of global ids < num_objects that land in `shard`.
  size_t CountFor(size_t shard) const {
    if (shard >= num_objects) return 0;
    return (num_objects - shard - 1) / num_shards + 1;
  }
};

}  // namespace esr

#endif  // ESR_ENGINE_SHARDED_SHARD_MAP_H_
