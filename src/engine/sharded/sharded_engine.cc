#include "engine/sharded/sharded_engine.h"

#include <algorithm>
#include <string>

#include "cc/to_policy.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace esr {
namespace {

AbortReason BoundAbortReason(GroupId violated_group) {
  return violated_group == kRootGroup ? AbortReason::kTransactionBound
                                      : AbortReason::kGroupBound;
}

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

ShardedEngine::ShardedEngine(const ShardedEngineOptions& options,
                             const ObjectStoreOptions& store_options,
                             const GroupSchema* schema,
                             MetricRegistry* metrics,
                             const DivergenceOptions& divergence)
    : schema_(schema), metrics_(metrics), counters_(metrics) {
  ESR_CHECK(schema_ != nullptr);
  ESR_CHECK(metrics_ != nullptr);
  map_.num_shards = std::max<size_t>(1, options.num_shards);
  map_.num_objects = store_options.num_objects;
  shards_.reserve(map_.num_shards);
  for (size_t s = 0; s < map_.num_shards; ++s) {
    ObjectStoreOptions local = store_options;
    local.num_objects = map_.CountFor(s);
    // Decorrelate per-shard initial values / object limits while keeping
    // the whole database deterministic in the base seed.
    local.seed = store_options.seed + static_cast<uint64_t>(s) * 0x9E3779B97F4A7C15ull;
    shards_.push_back(std::make_unique<Shard>(s, local, divergence, metrics,
                                              options.record_commit_log));
  }
  const size_t stripes = RoundUpPow2(std::max<size_t>(1, options.txn_stripes));
  stripe_mask_ = stripes - 1;
  stripes_.reserve(stripes);
  for (size_t i = 0; i < stripes; ++i) {
    stripes_.push_back(std::make_unique<TxnStripe>());
  }
  leader_writes_.resize(map_.num_shards);
  leader_reads_.resize(map_.num_shards);
}

ShardedEngine::~ShardedEngine() = default;

void ShardedEngine::ReserveForLoad(const LoadHints& hints) {
  if (hints.objects_per_txn > 0) {
    access_hint_.store(hints.objects_per_txn, std::memory_order_relaxed);
  }
  if (hints.concurrent_txns > 0) {
    // Double the fair share per stripe: id striping is uniform but
    // transient imbalance is free to absorb up front.
    const size_t per_stripe = 2 * (hints.concurrent_txns / stripes_.size() + 1);
    for (auto& stripe : stripes_) {
      std::lock_guard<std::mutex> lock(stripe->mu);
      stripe->map.Reserve(per_stripe);
      stripe->pool.reserve(per_stripe);
    }
  }
}

void ShardedEngine::SetHeadroomTracker(NodeHeadroomTracker* tracker) {
  headroom_tracker_.store(tracker, std::memory_order_relaxed);
}

void ShardedEngine::SetSharedBounds(const BoundSpec& import_bounds,
                                    const BoundSpec& export_bounds) {
  ESR_CHECK(num_active_.load(std::memory_order_relaxed) == 0)
      << "SetSharedBounds with transactions in flight";
  shared_import_ = std::make_unique<ShardedAccumulator>(
      schema_, import_bounds, ChargeDirection::kImport, shards_.size());
  shared_export_ = std::make_unique<ShardedAccumulator>(
      schema_, export_bounds, ChargeDirection::kExport, shards_.size());
}

Transaction* ShardedEngine::FindLive(TxnId txn) {
  TxnStripe& stripe = StripeFor(txn);
  std::lock_guard<std::mutex> lock(stripe.mu);
  std::unique_ptr<Transaction>* slot = stripe.map.Find(txn);
  return slot == nullptr ? nullptr : slot->get();
}

TxnId ShardedEngine::Begin(TxnType type, Timestamp ts,
                           const BoundSpec& bounds) {
  ScopedPhaseTimer phase(ProfilePhase::kValidate);
  const TxnId id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  TxnStripe& stripe = StripeFor(id);
  Transaction* txn;
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    if (!stripe.pool.empty()) {
      std::unique_ptr<Transaction> shell = std::move(stripe.pool.back());
      stripe.pool.pop_back();
      shell->ResetForReuse(id, type, ts, bounds);
      txn = stripe.map.TryEmplace(id, std::move(shell)).first->get();
    } else {
      txn = stripe.map
                .TryEmplace(id, std::make_unique<Transaction>(id, type, ts,
                                                              schema_, bounds))
                .first->get();
    }
  }
  const size_t hint = access_hint_.load(std::memory_order_relaxed);
  if (hint > 0) txn->ReserveAccessSets(hint);
  txn->AttachHeadroomTracker(headroom_tracker_.load(std::memory_order_relaxed));
  txn->set_trace_span(BeginSpan(SpanKind::kTxn, id, ts.site));
  counters_.BeginFor(type)->Increment();
  ESR_TRACE_EVENT(
      WithSpan(TraceEvent::BeginTxn(id, type, ts.site), txn->trace_span()));
  num_active_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

OpResult ShardedEngine::Read(TxnId txn, ObjectId object) {
  ScopedPhaseTimer phase(ProfilePhase::kValidate);
  Transaction* t = FindLive(txn);
  ESR_CHECK(t != nullptr)
      << "operation on unknown/finished transaction " << txn;
  Shard& shard = ShardForObject(object);
  AbortReason abort_reason = AbortReason::kNone;
  OpResult r;
  {
    std::lock_guard<ProfiledMutex> lock(shard.latch());
    shard.latch().set_holder(txn);
    TraceSpan op_span(SpanKind::kOp, txn, t->ts().site, object,
                      t->trace_span());
    r = DoRead(*t, object, shard, &abort_reason);
  }
  if (r.kind == OpResult::Kind::kAbort) TeardownAbort(t, abort_reason);
  return r;
}

OpResult ShardedEngine::Write(TxnId txn, ObjectId object, Value value) {
  ScopedPhaseTimer phase(ProfilePhase::kValidate);
  Transaction* t = FindLive(txn);
  ESR_CHECK(t != nullptr)
      << "operation on unknown/finished transaction " << txn;
  Shard& shard = ShardForObject(object);
  AbortReason abort_reason = AbortReason::kNone;
  OpResult r;
  {
    std::lock_guard<ProfiledMutex> lock(shard.latch());
    shard.latch().set_holder(txn);
    TraceSpan op_span(SpanKind::kOp, txn, t->ts().site, object,
                      t->trace_span());
    r = DoWrite(*t, object, value, shard, &abort_reason);
  }
  if (r.kind == OpResult::Kind::kAbort) TeardownAbort(t, abort_reason);
  return r;
}

void ShardedEngine::ExecuteBatch(OpBatch& batch) {
  ScopedPhaseTimer phase(ProfilePhase::kValidate);
  const size_t n = shards_.size();
  if (batch.by_shard.size() < n) batch.by_shard.resize(n);
  for (auto& idx : batch.by_shard) idx.clear();
  batch.aborted.clear();
  batch.results.clear();
  batch.results.resize(batch.reqs.size());
  for (size_t i = 0; i < batch.reqs.size(); ++i) {
    batch.by_shard[map_.ShardOf(batch.reqs[i].object)].push_back(
        static_cast<uint32_t>(i));
  }
  for (size_t s = 0; s < n; ++s) {
    const std::vector<uint32_t>& idx = batch.by_shard[s];
    if (idx.empty()) continue;
    Shard& shard = *shards_[s];
    std::lock_guard<ProfiledMutex> lock(shard.latch());
    for (const uint32_t i : idx) {
      const OpRequest& req = batch.reqs[i];
      Transaction* t = FindLive(req.txn);
      ESR_CHECK(t != nullptr)
          << "batched operation on unknown/finished transaction " << req.txn;
      shard.latch().set_holder(req.txn);
      AbortReason reason = AbortReason::kNone;
      TraceSpan op_span(SpanKind::kOp, req.txn, t->ts().site, req.object,
                        t->trace_span());
      const OpResult r = req.is_write
                             ? DoWrite(*t, req.object, req.value, shard,
                                       &reason)
                             : DoRead(*t, req.object, shard, &reason);
      batch.results[i] = r;
      if (r.kind == OpResult::Kind::kAbort) {
        batch.aborted.emplace_back(t, reason);
      }
    }
  }
  // Teardown outside every shard latch: abort restore touches the
  // transaction's whole write set, which can span other shards.
  for (const auto& entry : batch.aborted) {
    TeardownAbort(entry.first, entry.second);
  }
}

bool ShardedEngine::TrySharedCharge(ShardedAccumulator* shared,
                                    ObjectId object, Inconsistency d,
                                    size_t shard, GroupId* violated) {
  if (shared == nullptr || !shared->enforced() || d <= 0.0) return true;
  const ChargeResult r = shared->TryCharge(object, d, shard);
  if (!r.admitted) {
    *violated = r.violated_group;
    return false;
  }
  return true;
}

OpResult ShardedEngine::DoRead(Transaction& txn, ObjectId object,
                               Shard& shard, AbortReason* abort_reason) {
  ObjectRecord& obj = shard.store().Get(map_.LocalId(object));
  shard.stats().ops++;
  const ReadDecision decision = DecideRead(txn.View(), obj);

  switch (decision) {
    case ReadDecision::kWait:
      shard.stats().waits++;
      counters_.op_wait->Increment();
      ESR_TRACE_EVENT(TraceEvent::WaitOn(txn.id(), txn.ts().site, object,
                                         obj.uncommitted_writer()));
      ESR_TRACE_EVENT(TraceEvent::Flow(TraceEventType::kFlowBegin,
                                       obj.uncommitted_writer(), txn.id(),
                                       txn.ts().site));
      return OpResult::Wait(obj.uncommitted_writer());

    case ReadDecision::kAbortLate:
      *abort_reason = AbortReason::kLateRead;
      return OpResult::Abort(AbortReason::kLateRead);

    case ReadDecision::kProceedConsistent: {
      const Value present = obj.value();
      if (txn.is_query()) {
        obj.NoteQueryRead(txn.ts());
        if (obj.RegisterQueryReader(txn.id(), txn.ts(), present)) {
          txn.NoteRegisteredRead(object);
        }
      } else {
        obj.NoteUpdateRead(txn.ts());
      }
      txn.ObserveValue(object, present);
      txn.CountOp();
      counters_.op_read->Increment();
      ESR_TRACE_EVENT(TraceEvent::Op(TraceEventType::kRead, txn.id(),
                                     txn.ts().site, object));
      return OpResult::Ok(present, 0.0, /*was_relaxed=*/false);
    }

    case ReadDecision::kRelaxLateRead:
    case ReadDecision::kRelaxUncommitted: {
      auto measure_or = shard.data().ImportInconsistency(obj, txn.ts());
      if (!measure_or.ok()) {
        *abort_reason = AbortReason::kHistoryExhausted;
        return OpResult::Abort(AbortReason::kHistoryExhausted);
      }
      const DataManager::ImportMeasure measure = *measure_or;
      if (!shard.data().WithinObjectImportLimit(obj, measure.d)) {
        *abort_reason = AbortReason::kObjectBound;
        return OpResult::Abort(AbortReason::kObjectBound);
      }
      const Inconsistency increment =
          std::max(0.0, measure.d - txn.ChargedFor(object));
      // Engine-wide budget first (lock-free, never over-admits), then the
      // transaction's own declaration — the walk that emits the
      // BoundCheck events certification replays.
      GroupId violated = kInvalidGroup;
      if (!TrySharedCharge(shared_import_.get(), object, increment,
                           shard.index(), &violated)) {
        *abort_reason = BoundAbortReason(violated);
        return OpResult::Abort(*abort_reason);
      }
      const ChargeResult charge = txn.read_accumulator().TryCharge(
          object, increment, &shard.bound_stats(), txn.id(), txn.ts().site);
      if (!charge.admitted) {
        if (shared_import_ != nullptr) {
          shared_import_->UnchargePath(object, increment);
        }
        *abort_reason = BoundAbortReason(charge.violated_group);
        return OpResult::Abort(*abort_reason);
      }
      txn.NoteCharged(object, measure.d);
      const Value present = obj.value();
      if (txn.is_query()) {
        obj.NoteQueryRead(txn.ts());
        if (obj.RegisterQueryReader(txn.id(), txn.ts(), measure.proper)) {
          txn.NoteRegisteredRead(object);
        }
      } else {
        obj.NoteUpdateRead(txn.ts());
      }
      txn.ObserveValue(object, present);
      txn.CountOp();
      counters_.op_read->Increment();
      ESR_TRACE_EVENT(TraceEvent::Op(TraceEventType::kRead, txn.id(),
                                     txn.ts().site, object));
      if (measure.d > 0.0) {
        txn.CountInconsistentOp();
        counters_.op_inconsistent_ok->Increment();
        ESR_TRACE_EVENT(TraceEvent::ImportCharge(txn.id(), txn.ts().site,
                                                 object, measure.d));
      }
      return OpResult::Ok(present, measure.d, /*was_relaxed=*/true);
    }
  }
  ESR_LOG(kFatal) << "unreachable read decision";
  return OpResult::Abort(AbortReason::kNone);
}

OpResult ShardedEngine::DoWrite(Transaction& txn, ObjectId object,
                                Value value, Shard& shard,
                                AbortReason* abort_reason) {
  ESR_CHECK(txn.type() == TxnType::kUpdate)
      << "query ETs are read-only; Write from txn " << txn.id();
  ObjectRecord& obj = shard.store().Get(map_.LocalId(object));
  shard.stats().ops++;
  const WriteDecision decision = DecideWrite(txn.View(), obj);

  switch (decision) {
    case WriteDecision::kWait:
      shard.stats().waits++;
      counters_.op_wait->Increment();
      ESR_TRACE_EVENT(TraceEvent::WaitOn(txn.id(), txn.ts().site, object,
                                         obj.uncommitted_writer()));
      ESR_TRACE_EVENT(TraceEvent::Flow(TraceEventType::kFlowBegin,
                                       obj.uncommitted_writer(), txn.id(),
                                       txn.ts().site));
      return OpResult::Wait(obj.uncommitted_writer());

    case WriteDecision::kAbortLateRead:
    case WriteDecision::kAbortLateWrite:
      *abort_reason = AbortReason::kLateWrite;
      return OpResult::Abort(AbortReason::kLateWrite);

    case WriteDecision::kProceedConsistent: {
      {
        ScopedPhaseTimer apply_phase(ProfilePhase::kApply);
        obj.ApplyWrite(txn.id(), txn.ts(), value);
      }
      shard.stats().applied_writes++;
      txn.NotePendingWrite(object);
      txn.CountOp();
      counters_.op_write->Increment();
      ESR_TRACE_EVENT(TraceEvent::Op(TraceEventType::kWrite, txn.id(),
                                     txn.ts().site, object));
      return OpResult::Ok(value, 0.0, /*was_relaxed=*/false);
    }

    case WriteDecision::kRelaxLateWrite: {
      const Inconsistency d =
          shard.data().ExportInconsistency(obj, txn.View(), value);
      if (!shard.data().WithinObjectExportLimit(obj, d)) {
        *abort_reason = AbortReason::kObjectBound;
        return OpResult::Abort(AbortReason::kObjectBound);
      }
      GroupId violated = kInvalidGroup;
      if (!TrySharedCharge(shared_export_.get(), object, d, shard.index(),
                           &violated)) {
        *abort_reason = BoundAbortReason(violated);
        return OpResult::Abort(*abort_reason);
      }
      const ChargeResult charge = txn.accumulator().TryCharge(
          object, d, &shard.bound_stats(), txn.id(), txn.ts().site);
      if (!charge.admitted) {
        if (shared_export_ != nullptr) {
          shared_export_->UnchargePath(object, d);
        }
        *abort_reason = BoundAbortReason(charge.violated_group);
        return OpResult::Abort(*abort_reason);
      }
      {
        ScopedPhaseTimer apply_phase(ProfilePhase::kApply);
        obj.ApplyWrite(txn.id(), txn.ts(), value);
      }
      shard.stats().applied_writes++;
      txn.NotePendingWrite(object);
      txn.CountOp();
      counters_.op_write->Increment();
      ESR_TRACE_EVENT(TraceEvent::Op(TraceEventType::kWrite, txn.id(),
                                     txn.ts().site, object));
      if (d > 0.0) {
        txn.CountInconsistentOp();
        counters_.op_inconsistent_ok->Increment();
      }
      return OpResult::Ok(value, d, /*was_relaxed=*/true);
    }
  }
  ESR_LOG(kFatal) << "unreachable write decision";
  return OpResult::Abort(AbortReason::kNone);
}

Status ShardedEngine::Commit(TxnId txn) {
  ScopedPhaseTimer phase(ProfilePhase::kCommit);
  Transaction* t = FindLive(txn);
  if (t == nullptr) {
    return Status::FailedPrecondition("transaction " + std::to_string(txn) +
                                      " is not active");
  }
  CommitWaiter waiter;
  waiter.txn = t;
  std::unique_lock<std::mutex> lock(commit_mu_);
  commit_queue_.push_back(&waiter);
  if (commit_leader_active_) {
    // Follower: a leader is draining; it will commit us and flip done.
    // The block is pure waiting, so it books as kLockWait (not commit
    // work) and charges a dedicated contention site — group-commit
    // convoying shows up in the blocker tables instead of hiding
    // inside kCommit self-time. The leader's txn id is not tracked
    // across the handoff, so the wait is unattributed.
    ScopedPhaseTimer wait_phase(ProfilePhase::kLockWait);
    ScopedSiteWait wait(GlobalProfiler().site("engine.group_commit.follower"),
                        kInvalidTxnId);
    commit_cv_.wait(lock, [&waiter] { return waiter.done; });
    return Status::OK();
  }
  // Leader: drain the queue in batches until it runs dry. Our own waiter
  // is in the first batch. Leadership (and with it the leader_* scratch)
  // hands off through commit_mu_, which orders successive leaders.
  commit_leader_active_ = true;
  while (!commit_queue_.empty()) {
    leader_batch_.clear();
    leader_batch_.swap(commit_queue_);
    lock.unlock();
    ProcessCommitBatch(leader_batch_);
    lock.lock();
    for (CommitWaiter* w : leader_batch_) w->done = true;
    commit_cv_.notify_all();
  }
  commit_leader_active_ = false;
  return Status::OK();
}

void ShardedEngine::ProcessCommitBatch(
    const std::vector<CommitWaiter*>& batch) {
  // The batched shard-store mutation is apply work, not commit
  // bookkeeping: attribute it to kApply (nested under the leader's
  // kCommit scope) so batch size shows up in the phase attribution.
  ScopedPhaseTimer apply_phase(ProfilePhase::kApply);
  // Txn-major fill keeps each transaction's refs contiguous per shard, so
  // the distinct-writer count below is a simple adjacency check.
  for (CommitWaiter* w : batch) {
    Transaction* t = w->txn;
    for (const ObjectId object : t->pending_writes()) {
      leader_writes_[map_.ShardOf(object)].push_back({t, object});
    }
    for (const ObjectId object : t->registered_reads()) {
      leader_reads_[map_.ShardOf(object)].push_back({t, object});
    }
  }
  commit_batches_total_.fetch_add(1, std::memory_order_relaxed);
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::vector<PendingRef>& writes = leader_writes_[s];
    std::vector<PendingRef>& reads = leader_reads_[s];
    if (writes.empty() && reads.empty()) continue;
    Shard& shard = *shards_[s];
    std::lock_guard<ProfiledMutex> lock(shard.latch());
    ShardStats& stats = shard.stats();
    if (!writes.empty()) {
      stats.commit_batches++;
      const Transaction* prev = nullptr;
      for (const PendingRef& ref : writes) {
        ObjectRecord& obj = shard.store().Get(map_.LocalId(ref.object));
        obj.CommitWrite(ref.txn->id());
        shard.RecordCommit(ref.object, ref.txn->id(), obj.write_ts());
        stats.committed_writes++;
        if (ref.txn != prev) {
          stats.committed_writers++;
          prev = ref.txn;
        }
      }
    }
    for (const PendingRef& ref : reads) {
      shard.store()
          .Get(map_.LocalId(ref.object))
          .UnregisterQueryReader(ref.txn->id());
    }
    writes.clear();
    reads.clear();
  }
  for (CommitWaiter* w : batch) FinishCommit(w->txn);
}

void ShardedEngine::FinishCommit(Transaction* txn) {
  {
    TraceSpan commit_span(SpanKind::kCommit, txn->id(), txn->ts().site, 0,
                          txn->trace_span());
    counters_.CommitFor(txn->type())->Increment();
    ESR_TRACE_EVENT(TraceEvent::CommitTxn(txn->id(), txn->ts().site));
    if (!txn->pending_writes().empty()) {
      ESR_TRACE_EVENT(TraceEvent::Flow(TraceEventType::kFlowEnd, txn->id(),
                                       txn->id(), txn->ts().site));
    }
    EndSpan(SpanKind::kTxn, txn->trace_span(), txn->id(), txn->ts().site);
  }
  UnchargeShared(*txn);
  ReleaseTxn(txn);
}

Status ShardedEngine::Abort(TxnId txn) {
  ScopedPhaseTimer phase(ProfilePhase::kCommit);
  Transaction* t = FindLive(txn);
  if (t == nullptr) {
    return Status::FailedPrecondition("transaction " + std::to_string(txn) +
                                      " is not active");
  }
  TraceSpan commit_span(SpanKind::kCommit, txn, t->ts().site, 0,
                        t->trace_span());
  TeardownAbort(t, AbortReason::kUserRequested);
  return Status::OK();
}

void ShardedEngine::TeardownAbort(Transaction* txn, AbortReason reason) {
  // Abort teardown is commit-path work whichever op triggered it; the
  // nested scope keeps shadow recovery out of kValidate self-time when
  // a mid-operation abort lands here.
  ScopedPhaseTimer phase(ProfilePhase::kCommit);
  // Shadow-value recovery shard by shard (Sec. 6): one latch at a time,
  // ascending, filtering the write/read sets per shard. Aborts are the
  // cold path; the filter scan is cheaper than per-shard scratch here.
  for (size_t s = 0; s < shards_.size(); ++s) {
    bool touches = false;
    for (const ObjectId object : txn->pending_writes()) {
      if (map_.ShardOf(object) == s) {
        touches = true;
        break;
      }
    }
    if (!touches) {
      for (const ObjectId object : txn->registered_reads()) {
        if (map_.ShardOf(object) == s) {
          touches = true;
          break;
        }
      }
    }
    if (!touches) continue;
    Shard& shard = *shards_[s];
    std::lock_guard<ProfiledMutex> lock(shard.latch());
    shard.latch().set_holder(txn->id());
    for (const ObjectId object : txn->pending_writes()) {
      if (map_.ShardOf(object) != s) continue;
      shard.store().Get(map_.LocalId(object)).AbortWrite(txn->id());
    }
    for (const ObjectId object : txn->registered_reads()) {
      if (map_.ShardOf(object) != s) continue;
      shard.store().Get(map_.LocalId(object)).UnregisterQueryReader(txn->id());
    }
  }
  counters_.txn_abort->Increment();
  counters_.AbortFor(reason)->Increment();
  ESR_TRACE_EVENT(TraceEvent::AbortTxn(txn->id(), txn->ts().site,
                                       static_cast<uint8_t>(reason)));
  if (!txn->pending_writes().empty()) {
    ESR_TRACE_EVENT(TraceEvent::Flow(TraceEventType::kFlowEnd, txn->id(),
                                     txn->id(), txn->ts().site));
  }
  EndSpan(SpanKind::kTxn, txn->trace_span(), txn->id(), txn->ts().site);
  UnchargeShared(*txn);
  ReleaseTxn(txn);
}

void ShardedEngine::UnchargeShared(const Transaction& txn) {
  if (txn.is_query()) {
    if (shared_import_ != nullptr && shared_import_->enforced()) {
      shared_import_->UnchargeAccumulated(txn.accumulator());
    }
    return;
  }
  if (shared_export_ != nullptr && shared_export_->enforced()) {
    shared_export_->UnchargeAccumulated(txn.accumulator());
  }
  if (txn.import_accumulator() != nullptr && shared_import_ != nullptr &&
      shared_import_->enforced()) {
    shared_import_->UnchargeAccumulated(*txn.import_accumulator());
  }
}

void ShardedEngine::ReleaseTxn(Transaction* txn) {
  const TxnId id = txn->id();
  TxnStripe& stripe = StripeFor(id);
  std::lock_guard<std::mutex> lock(stripe.mu);
  std::unique_ptr<Transaction>* slot = stripe.map.Find(id);
  ESR_CHECK(slot != nullptr) << "double release of transaction " << id;
  stripe.pool.push_back(std::move(*slot));
  stripe.map.Erase(id);
  num_active_.fetch_sub(1, std::memory_order_relaxed);
}

bool ShardedEngine::IsActive(TxnId txn) const {
  const TxnStripe& stripe = StripeFor(txn);
  std::lock_guard<std::mutex> lock(stripe.mu);
  return stripe.map.Contains(txn);
}

const Transaction* ShardedEngine::Find(TxnId txn) const {
  const TxnStripe& stripe = StripeFor(txn);
  std::lock_guard<std::mutex> lock(stripe.mu);
  const std::unique_ptr<Transaction>* slot = stripe.map.Find(txn);
  return slot == nullptr ? nullptr : slot->get();
}

size_t ShardedEngine::num_active() const {
  return num_active_.load(std::memory_order_relaxed);
}

ShardStats ShardedEngine::SnapshotShardStats(size_t shard) {
  ESR_CHECK(shard < shards_.size());
  return shards_[shard]->SnapshotStats();
}

const std::vector<CommitLogEntry>& ShardedEngine::commit_log(
    size_t shard) const {
  ESR_CHECK(shard < shards_.size());
  return shards_[shard]->commit_log();
}

void ShardedEngine::ExportShardGauges(MetricRegistry* metrics) {
  if (metrics == nullptr) return;
  metrics->gauge("engine.shards").Set(static_cast<double>(shards_.size()));
  metrics->gauge("engine.commit_batches")
      .Set(static_cast<double>(
          commit_batches_total_.load(std::memory_order_relaxed)));
  for (size_t s = 0; s < shards_.size(); ++s) {
    const ShardStats stats = shards_[s]->SnapshotStats();
    const std::string prefix = "engine.shard" + std::to_string(s);
    metrics->gauge(prefix + ".ops").Set(static_cast<double>(stats.ops));
    metrics->gauge(prefix + ".waits").Set(static_cast<double>(stats.waits));
    metrics->gauge(prefix + ".applied_writes")
        .Set(static_cast<double>(stats.applied_writes));
    metrics->gauge(prefix + ".committed_writes")
        .Set(static_cast<double>(stats.committed_writes));
    metrics->gauge(prefix + ".committed_writers")
        .Set(static_cast<double>(stats.committed_writers));
    metrics->gauge(prefix + ".commit_batches")
        .Set(static_cast<double>(stats.commit_batches));
  }
  if (shared_import_ != nullptr) shared_import_->ExportGauges(metrics);
  if (shared_export_ != nullptr) shared_export_->ExportGauges(metrics);
}

Value ShardedEngine::TotalValue() const {
  Value total = 0;
  for (const auto& shard : shards_) {
    total += shard->store().TotalValue();
  }
  return total;
}

}  // namespace esr
