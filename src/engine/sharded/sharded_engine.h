#ifndef ESR_ENGINE_SHARDED_SHARDED_ENGINE_H_
#define ESR_ENGINE_SHARDED_SHARDED_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/flat_map.h"
#include "common/metrics.h"
#include "engine/sharded/shard.h"
#include "engine/sharded/shard_map.h"
#include "engine/sharded/sharded_accumulator.h"
#include "hierarchy/group_schema.h"
#include "txn/engine.h"
#include "txn/transaction.h"

namespace esr {

/// Sharded-engine configuration (ServerOptions carries one).
struct ShardedEngineOptions {
  /// Object-store partitions, each with its own latch and TO state.
  size_t num_shards = 4;
  /// Stripes of the transaction table (rounded up to a power of two).
  size_t txn_stripes = 16;
  /// Record every committed write per shard for the stress harness's
  /// timestamp-order invariant check. Off for production runs (the log
  /// grows with committed writes).
  bool record_commit_log = false;
};

/// One batched operation for ShardedEngine::ExecuteBatch. At most one
/// in-flight op per transaction per batch (a transaction's ops are
/// sequential; its session submits the next only after consuming the
/// previous result).
struct OpRequest {
  TxnId txn = kInvalidTxnId;
  ObjectId object = kInvalidObjectId;
  bool is_write = false;
  Value value = 0;
};

/// Reusable batch container: submit ops in `reqs`, read verdicts from
/// `results` (parallel arrays). The internal scratch keeps its capacity
/// across calls, so a worker looping on one OpBatch stays off the
/// allocator.
struct OpBatch {
  std::vector<OpRequest> reqs;
  std::vector<OpResult> results;

  // ExecuteBatch scratch (per-shard index lists, abort worklist).
  std::vector<std::vector<uint32_t>> by_shard;
  std::vector<std::pair<Transaction*, AbortReason>> aborted;
};

/// The multi-core ESR engine: the paper's TO protocol (Fig. 3 relaxations,
/// Sec. 5 hierarchical bound checks, shadow-value recovery) scaled out by
/// partitioning the object store into shards — each with its own
/// ProfiledMutex latch, local ObjectStore slice, and data manager — so
/// operations on different shards never serialize.
///
/// Concurrency architecture (DESIGN.md §"Sharded engine"):
///  * Object state is guarded by the owning shard's latch; an operation
///    takes exactly one. No code path ever holds two shard latches at
///    once (commit applies shard by shard), so there is no latch ordering
///    to violate and no deadlock.
///  * Transaction state lives in a striped table (mutex + FlatMap of
///    unique_ptr per stripe, so pointers survive backward-shift erases of
///    their neighbors). A Transaction's contents are only ever touched by
///    its owning session thread and, at commit, by the group-commit
///    leader — handoff through the commit queue's mutex orders the two.
///  * Commit is group commit: committers enqueue and the first becomes
///    leader, draining the queue in batches. The leader takes each
///    touched shard's latch once per batch (commits all writes and
///    reader deregistrations for that shard together), then finishes
///    every transaction and wakes its waiter. Followers block on the
///    condition variable — the group amortizes latch traffic under high
///    MPL.
///  * Per-transaction accumulators work exactly as in the single-latch
///    engine (same trace events, so BoundWalkReplayer / StreamCertifier
///    recertify unchanged). An optional engine-wide budget
///    (SetSharedBounds) is enforced by lock-free ShardedAccumulators on
///    top: shared charge first, transaction charge second, shared
///    uncharge on reject or at teardown.
///
/// Timestamps remain client-assigned (one TimestampGenerator per
/// session); shard-local decisions only ever compare timestamps of
/// operations on that shard's objects, so the cross-shard clock skew a
/// multi-threaded run exhibits costs aborts at worst, never correctness.
class ShardedEngine final : public TransactionEngine {
 public:
  /// `schema` and `metrics` must outlive the engine. The schema may gain
  /// groups after construction (per-transaction accumulators size
  /// lazily), but SetSharedBounds must come after the schema is final.
  ShardedEngine(const ShardedEngineOptions& options,
                const ObjectStoreOptions& store_options,
                const GroupSchema* schema, MetricRegistry* metrics,
                const DivergenceOptions& divergence = {});
  ~ShardedEngine() override;

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // -- TransactionEngine ---------------------------------------------------
  void ReserveForLoad(const LoadHints& hints) override;
  TxnId Begin(TxnType type, Timestamp ts, const BoundSpec& bounds) override;
  OpResult Read(TxnId txn, ObjectId object) override;
  OpResult Write(TxnId txn, ObjectId object, Value value) override;
  Status Commit(TxnId txn) override;
  Status Abort(TxnId txn) override;
  bool IsActive(TxnId txn) const override;
  const Transaction* Find(TxnId txn) const override;
  size_t num_active() const override;
  EngineKind kind() const override { return EngineKind::kSharded; }
  void SetHeadroomTracker(NodeHeadroomTracker* tracker) override;

  // -- Batched submission --------------------------------------------------
  /// Executes every op in `batch.reqs`, filling `batch.results`. Ops are
  /// grouped by shard so each shard latch is taken once per batch. At
  /// most one op per transaction per batch; `batch` must not be shared
  /// between threads concurrently.
  void ExecuteBatch(OpBatch& batch);

  // -- Engine-wide epsilon budget ------------------------------------------
  /// Installs shared import/export budgets enforced across ALL in-flight
  /// transactions (on top of each transaction's own declaration). Call
  /// after the schema is fully built and before any transaction begins;
  /// not thread-safe against running operations.
  void SetSharedBounds(const BoundSpec& import_bounds,
                       const BoundSpec& export_bounds);

  /// Shared budgets (nullptr until SetSharedBounds).
  ShardedAccumulator* shared_import() { return shared_import_.get(); }
  ShardedAccumulator* shared_export() { return shared_export_.get(); }

  // -- Introspection -------------------------------------------------------
  size_t num_shards() const { return shards_.size(); }
  const ShardMap& shard_map() const { return map_; }

  /// Consistent per-shard stats snapshot (takes that shard's latch).
  ShardStats SnapshotShardStats(size_t shard);

  /// Quiescent-only: one shard's committed-write log (see CommitLogEntry;
  /// empty unless options.record_commit_log).
  const std::vector<CommitLogEntry>& commit_log(size_t shard) const;

  /// Publishes `engine.shard<i>.*` gauges from consistent per-shard
  /// snapshots (one latch acquisition per shard), the group-commit batch
  /// counters, and — when shared bounds are installed — the shared
  /// accumulators' in-flight node totals. Safe concurrently with running
  /// operations and group commit; the scrape serializes on each shard
  /// latch briefly instead of reading fields torn.
  void ExportShardGauges(MetricRegistry* metrics);

  /// Sum of all committed object values across shards (quiescent only).
  Value TotalValue() const;

  /// True when `id` is a valid global object id.
  bool ContainsObject(ObjectId id) const {
    return static_cast<size_t>(id) < map_.num_objects;
  }

  /// Direct record access for loaders and tests (quiescent only — no
  /// latch is taken).
  ObjectRecord& ObjectAt(ObjectId id) {
    return shards_[map_.ShardOf(id)]->store().Get(map_.LocalId(id));
  }

  /// Group-commit batches the leader processed (relaxed).
  int64_t commit_batches() const {
    return commit_batches_total_.load(std::memory_order_relaxed);
  }

  MetricRegistry& metrics() { return *metrics_; }
  const GroupSchema& schema() const { return *schema_; }

 private:
  struct TxnStripe {
    mutable std::mutex mu;
    FlatMap<TxnId, std::unique_ptr<Transaction>> map;
    std::vector<std::unique_ptr<Transaction>> pool;
  };

  /// One committer parked in the group-commit queue.
  struct CommitWaiter {
    Transaction* txn = nullptr;
    bool done = false;
  };

  /// (transaction, global object id) pair on the leader's per-shard
  /// apply lists.
  struct PendingRef {
    Transaction* txn;
    ObjectId object;
  };

  TxnStripe& StripeFor(TxnId txn) {
    return *stripes_[static_cast<size_t>(txn) & stripe_mask_];
  }
  const TxnStripe& StripeFor(TxnId txn) const {
    return *stripes_[static_cast<size_t>(txn) & stripe_mask_];
  }
  Shard& ShardForObject(ObjectId object) {
    return *shards_[map_.ShardOf(object)];
  }

  /// Live transaction lookup; the caller must be its owning session (the
  /// pointer stays valid because only the owner can finish it).
  Transaction* FindLive(TxnId txn);

  /// Fig. 3 decision logic under the shard latch. On an abort verdict the
  /// transaction is NOT yet torn down (the caller must release the latch
  /// first, then call TeardownAbort) — `abort_reason` carries the cause.
  OpResult DoRead(Transaction& txn, ObjectId object, Shard& shard,
                  AbortReason* abort_reason);
  OpResult DoWrite(Transaction& txn, ObjectId object, Value value,
                   Shard& shard, AbortReason* abort_reason);

  /// Shared-budget admission for one relaxed op: charges the shared
  /// accumulator (when installed) before the per-transaction one; the
  /// caller uncharges on per-transaction reject.
  bool TrySharedCharge(ShardedAccumulator* shared, ObjectId object,
                       Inconsistency d, size_t shard, GroupId* violated);

  /// Group-commit leader body: apply every batch member's writes and
  /// reader deregistrations shard by shard, then finish each transaction.
  void ProcessCommitBatch(const std::vector<CommitWaiter*>& batch);
  void FinishCommit(Transaction* txn);

  /// Abort teardown (op-failure or user abort): restores shadows and
  /// deregisters readers shard by shard (one latch at a time), emits the
  /// abort events, releases shared charges, recycles the shell. Must be
  /// called with no shard latch held.
  void TeardownAbort(Transaction* txn, AbortReason reason);

  /// Returns the txn's charges to the shared budgets.
  void UnchargeShared(const Transaction& txn);

  /// Removes the transaction from its stripe and recycles the shell.
  void ReleaseTxn(Transaction* txn);

  const GroupSchema* schema_;
  MetricRegistry* metrics_;
  ShardMap map_;
  std::vector<std::unique_ptr<Shard>> shards_;

  size_t stripe_mask_ = 0;
  std::vector<std::unique_ptr<TxnStripe>> stripes_;
  std::atomic<TxnId> next_txn_id_{1};
  std::atomic<size_t> num_active_{0};
  std::atomic<NodeHeadroomTracker*> headroom_tracker_{nullptr};
  std::atomic<size_t> access_hint_{0};

  std::unique_ptr<ShardedAccumulator> shared_import_;
  std::unique_ptr<ShardedAccumulator> shared_export_;

  // -- Group commit --------------------------------------------------------
  std::mutex commit_mu_;
  std::condition_variable commit_cv_;
  std::vector<CommitWaiter*> commit_queue_;
  bool commit_leader_active_ = false;
  /// Leader-only scratch (leadership hands off under commit_mu_, which
  /// orders successive leaders' accesses).
  std::vector<CommitWaiter*> leader_batch_;
  std::vector<std::vector<PendingRef>> leader_writes_;
  std::vector<std::vector<PendingRef>> leader_reads_;
  std::atomic<int64_t> commit_batches_total_{0};

  EngineCounters counters_;
};

}  // namespace esr

#endif  // ESR_ENGINE_SHARDED_SHARDED_ENGINE_H_
