#include "engine/sharded/session.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/logging.h"
#include "common/random.h"
#include "obs/profile.h"

namespace esr {
namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

SessionDriver::SessionDriver(Server* server, SiteId site,
                             const WorkloadSpec* spec, uint64_t seed,
                             int target_txns, std::atomic<bool>* stop,
                             bool record_latency)
    : server_(server),
      spec_(spec),
      site_(site),
      target_txns_(target_txns),
      stop_(stop),
      record_latency_(record_latency),
      // Same per-site seeding scheme as the thread-per-client loop, mixed
      // with the pool seed so distinct runs generate distinct loads.
      generator_(*spec, 1000 + site + seed * 7919),
      ts_gen_(site) {}

void SessionDriver::AbortInFlight() {
  if (txn_ != kInvalidTxnId) {
    (void)server_->Abort(txn_);
    txn_ = kInvalidTxnId;
  }
}

bool SessionDriver::NextOp(OpRequest* out) {
  while (true) {
    if (stop_ != nullptr && stop_->load(std::memory_order_relaxed)) {
      AbortInFlight();
      finished_ = true;
      return false;
    }
    if (completed_ >= target_txns_) {
      finished_ = true;
      return false;
    }
    if (txn_ == kInvalidTxnId) {
      if (!script_valid_) {
        script_ = generator_.Next();
        script_valid_ = true;
        started_us_ = NowMicros();
      }
      // Fresh timestamp per (re)submission, exactly like the prototype's
      // clients resubmitting after an abort.
      txn_ = server_->Begin(script_.type, ts_gen_.Next(NowMicros()),
                            script_.bounds);
      op_index_ = 0;
      reads_.clear();
    }
    if (op_index_ < script_.ops.size()) {
      const ScriptOp& op = script_.ops[op_index_];
      out->txn = txn_;
      out->object = op.object;
      if (op.kind == ScriptOp::Kind::kRead) {
        out->is_write = false;
        out->value = 0;
      } else {
        out->is_write = true;
        out->value = ApplyDeltaReflecting(
            reads_[static_cast<size_t>(op.source_read)], op.delta,
            spec_->min_value, spec_->max_value);
      }
      return true;
    }
    // Script exhausted: commit inline. For the sharded engine this blocks
    // in group commit — the worker that drove us here is either a
    // follower (cheap) or becomes the leader for the whole batch.
    if (server_->Commit(txn_).ok()) {
      ++stats_.committed;
      ++completed_;
      if (record_latency_) {
        server_->metrics().RecordSample(
            "client.txn_latency_ms",
            static_cast<double>(NowMicros() - started_us_) / 1000.0);
      }
      script_valid_ = false;
    }
    txn_ = kInvalidTxnId;
    // Loop: begin the next script (or resubmit this one on commit
    // failure) and hand out its first op.
  }
}

void SessionDriver::OnResult(const OpResult& r) {
  switch (r.kind) {
    case OpResult::Kind::kOk:
      if (script_.ops[op_index_].kind == ScriptOp::Kind::kRead) {
        reads_.push_back(r.value);
      }
      ++op_index_;
      break;
    case OpResult::Kind::kWait:
      // Same op again next round; the blocking writer's session drains
      // through the same worker pool, so the wait resolves.
      ++stats_.waits;
      break;
    case OpResult::Kind::kAbort:
      // Server already tore the transaction down (shadows restored);
      // resubmit the same script with a fresh timestamp.
      ++stats_.aborts;
      txn_ = kInvalidTxnId;
      break;
  }
}

SessionPoolResult RunSessionWorkers(Server* server, const WorkloadSpec& spec,
                                    const SessionPoolOptions& options) {
  ESR_CHECK(options.sessions > 0);
  const size_t workers =
      std::max<size_t>(1, std::min(options.workers, options.sessions));

  std::vector<std::unique_ptr<SessionDriver>> drivers;
  drivers.reserve(options.sessions);
  for (size_t i = 0; i < options.sessions; ++i) {
    drivers.push_back(std::make_unique<SessionDriver>(
        server, static_cast<SiteId>(i + 1), &spec, options.seed,
        options.txns_per_session, options.stop, options.record_latency));
  }

  LoadHints hints;
  hints.concurrent_txns = options.sessions;
  hints.objects_per_txn =
      static_cast<size_t>(std::max(spec.query_ops_max, spec.update_ops_max));
  server->engine().ReserveForLoad(hints);

  ShardedEngine* const sharded = server->sharded_engine();
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      // Round-robin pinning: session i belongs to worker i % workers.
      std::vector<SessionDriver*> mine;
      for (size_t i = w; i < drivers.size(); i += workers) {
        mine.push_back(drivers[i].get());
      }
      OpBatch batch;
      std::vector<size_t> order;
      // Per-session wait backoff: a session whose op keeps hitting an
      // uncommitted writer sits out exponentially more rounds between
      // retries (reset on any progress). This bounds the retry traffic —
      // and the kWait trace events — per blocked operation to
      // O(log rounds) even when the blocking writer's worker is
      // descheduled for a long stretch.
      std::vector<int> defer(mine.size(), 0);
      std::vector<int> streak(mine.size(), 0);
      // Abort backoff is randomized *wall-clock* time, not rounds. With
      // zero think time a resubmission loop calls Begin faster than once
      // per microsecond, so TimestampGenerator's strict monotonicity
      // (max(now, last+1)) pushes the session's logical clock ahead of
      // wall time; two colliding sessions then leapfrog each other in
      // pure logical time — every re-begun write lands timestamp-adjacent
      // to the other session's latest read and aborts late, forever.
      // Deferring in wall microseconds bounds each session's begin rate
      // to at most one per microsecond, which pins the generators back to
      // the wall clock and lets real time separate the contenders. The
      // rng is seeded per worker so runs stay reproducible.
      std::vector<int64_t> not_before_us(mine.size(), 0);
      std::vector<int> abort_streak(mine.size(), 0);
      Rng backoff_rng(options.seed * 0x9E3779B9u + w + 1);
      // All workers share one contention site: the interesting signal
      // is total time the pool spent backing off, not which worker
      // happened to yield.
      ContentionSite* const backoff_site =
          GlobalProfiler().site("session.wait_backoff");
      constexpr int kMaxDeferRounds = 64;
      while (true) {
        batch.reqs.clear();
        order.clear();
        size_t live = 0;
        int64_t now_us = -1;
        for (size_t j = 0; j < mine.size(); ++j) {
          if (mine[j]->finished()) continue;
          ++live;
          if (defer[j] > 0) {
            --defer[j];
            continue;
          }
          if (not_before_us[j] > 0) {
            if (now_us < 0) now_us = NowMicros();
            if (now_us < not_before_us[j]) continue;
            not_before_us[j] = 0;
          }
          OpRequest req;
          if (mine[j]->NextOp(&req)) {
            batch.reqs.push_back(req);
            order.push_back(j);
          }
        }
        if (live == 0) break;  // every session finished
        if (options.op_delay_us > 0) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(options.op_delay_us));
        }
        if (batch.reqs.empty()) {
          // Everyone is sitting out a backoff round; yield the core to
          // the workers serving the blocking writers. yield() (not a
          // timed sleep) matters on few-core hosts: a 50us sleep_for
          // costs ~2-3x that in timer slack, while yield reschedules the
          // blocking writer's worker immediately. The yield is charged
          // to the shared backoff site as kLockWait so stalled-pool
          // rounds surface in the wall-clock attribution.
          ScopedPhaseTimer wait_phase(ProfilePhase::kLockWait);
          ScopedSiteWait wait(backoff_site, kInvalidTxnId);
          std::this_thread::yield();
          continue;
        }
        bool progressed = false;
        if (sharded != nullptr) {
          sharded->ExecuteBatch(batch);
        } else {
          // Any other engine: identical schedule, per-op submission.
          batch.results.resize(batch.reqs.size());
          for (size_t i = 0; i < batch.reqs.size(); ++i) {
            const OpRequest& req = batch.reqs[i];
            batch.results[i] =
                req.is_write ? server->Write(req.txn, req.object, req.value)
                             : server->Read(req.txn, req.object);
          }
        }
        for (size_t i = 0; i < order.size(); ++i) {
          const size_t j = order[i];
          if (batch.results[i].kind == OpResult::Kind::kWait) {
            streak[j] = std::min(streak[j] * 2 + 1, kMaxDeferRounds);
            defer[j] = streak[j];
          } else if (batch.results[i].kind == OpResult::Kind::kAbort) {
            // Randomized exponential backoff, 1..64us, before the
            // resubmission's Begin (see not_before_us above).
            abort_streak[j] = std::min(abort_streak[j] + 1, 6);
            not_before_us[j] =
                NowMicros() + 1 +
                backoff_rng.UniformInt(0, (1 << abort_streak[j]) - 1);
            streak[j] = 0;
            progressed = true;
          } else {
            streak[j] = 0;
            abort_streak[j] = 0;
            progressed = true;
          }
          mine[j]->OnResult(batch.results[i]);
        }
        if (!progressed) {
          // Every submitted op waited: cede the core so the blocking
          // writers' workers can run and commit.
          ScopedPhaseTimer wait_phase(ProfilePhase::kLockWait);
          ScopedSiteWait wait(backoff_site, kInvalidTxnId);
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  SessionPoolResult result;
  result.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.per_session.reserve(drivers.size());
  for (const auto& driver : drivers) {
    result.per_session.push_back(driver->stats());
    result.total.committed += driver->stats().committed;
    result.total.aborts += driver->stats().aborts;
    result.total.waits += driver->stats().waits;
  }
  return result;
}

}  // namespace esr
