#include "engine/sharded/sharded_accumulator.h"

#include <string>

#include "common/logging.h"

namespace esr {

ShardedAccumulator::ShardedAccumulator(const GroupSchema* schema,
                                       BoundSpec bounds,
                                       ChargeDirection direction,
                                       size_t num_shards)
    : schema_(schema),
      bounds_(std::move(bounds)),
      direction_(direction),
      enforced_(false),
      nodes_(schema->num_groups()),
      partials_(num_shards == 0 ? 1 : num_shards) {
  ESR_CHECK(schema_ != nullptr);
  for (GroupId g = 0; g < schema_->num_groups(); ++g) {
    if (bounds_.LimitFor(g) < kUnbounded) {
      enforced_ = true;
      break;
    }
  }
}

bool ShardedAccumulator::BoundedAdd(Node& node, double d, double limit) {
  uint64_t cur = node.bits.load(std::memory_order_acquire);
  while (true) {
    const double next = FromBits(cur) + d;
    if (next > limit) return false;
    if (node.bits.compare_exchange_weak(cur, Bits(next),
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
      return true;
    }
  }
}

void ShardedAccumulator::Sub(Node& node, double d) {
  uint64_t cur = node.bits.load(std::memory_order_acquire);
  while (true) {
    double next = FromBits(cur) - d;
    if (next < 0.0) next = 0.0;  // drift guard; exact for integer charges
    if (node.bits.compare_exchange_weak(cur, Bits(next),
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
      return;
    }
  }
}

ChargeResult ShardedAccumulator::TryCharge(ObjectId object, Inconsistency d,
                                           size_t shard) {
  if (!enforced_ || d <= 0.0) return ChargeResult{true, kInvalidGroup};
  const GroupId leaf = schema_->GroupOf(object);
  // Charge upward as we check; a reject above rolls the prefix back. This
  // keeps each node a single CAS while preserving the invariant that a
  // published total never exceeds its limit.
  GroupId cur = leaf;
  while (true) {
    const double charge = d * schema_->weight(cur);
    if (charge > 0.0 &&
        !BoundedAdd(nodes_[cur], charge, bounds_.LimitFor(cur))) {
      // Roll back every node below the rejecting one.
      for (GroupId undo = leaf; undo != cur; undo = schema_->parent(undo)) {
        const double undo_charge = d * schema_->weight(undo);
        if (undo_charge > 0.0) Sub(nodes_[undo], undo_charge);
      }
      return ChargeResult{false, cur};
    }
    if (cur == kRootGroup) break;
    cur = schema_->parent(cur);
  }
  partials_[shard % partials_.size()].charges.fetch_add(
      1, std::memory_order_relaxed);
  return ChargeResult{true, kInvalidGroup};
}

void ShardedAccumulator::UnchargePath(ObjectId object, Inconsistency d) {
  if (!enforced_ || d <= 0.0) return;
  GroupId cur = schema_->GroupOf(object);
  while (true) {
    const double charge = d * schema_->weight(cur);
    if (charge > 0.0) Sub(nodes_[cur], charge);
    if (cur == kRootGroup) break;
    cur = schema_->parent(cur);
  }
}

void ShardedAccumulator::UnchargeAccumulated(
    const InconsistencyAccumulator& txn_acc) {
  if (!enforced_) return;
  for (GroupId g = 0; g < nodes_.size(); ++g) {
    const Inconsistency a = txn_acc.accumulated(g);
    if (a > 0.0) Sub(nodes_[g], a);
  }
}

Inconsistency ShardedAccumulator::accumulated(GroupId group) const {
  if (group >= nodes_.size()) return 0.0;
  return FromBits(nodes_[group].bits.load(std::memory_order_acquire));
}

int64_t ShardedAccumulator::ShardCharges(size_t shard) const {
  if (shard >= partials_.size()) return 0;
  return partials_[shard].charges.load(std::memory_order_relaxed);
}

int64_t ShardedAccumulator::FoldedCharges() const {
  int64_t total = 0;
  for (const ShardPartial& p : partials_) {
    total += p.charges.load(std::memory_order_relaxed);
  }
  return total;
}

void ShardedAccumulator::ExportGauges(MetricRegistry* metrics) const {
  if (!enforced_ || metrics == nullptr) return;
  const std::string prefix =
      std::string("engine.shared_eps.") + ChargeDirectionToString(direction_);
  for (GroupId g = 0; g < nodes_.size(); ++g) {
    metrics->gauge(prefix + ".node" + std::to_string(g))
        .Set(accumulated(g));
  }
  metrics->gauge(prefix + ".charges")
      .Set(static_cast<double>(FoldedCharges()));
}

}  // namespace esr
