#ifndef ESR_ENGINE_SHARDED_SESSION_H_
#define ESR_ENGINE_SHARDED_SESSION_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/timestamp.h"
#include "common/types.h"
#include "engine/sharded/sharded_engine.h"
#include "txn/server.h"
#include "workload/generator.h"
#include "workload/spec.h"

namespace esr {

/// Per-session outcome counters (the threaded server's ClientResult,
/// lifted into the library so the worker pool and the stress harness
/// share them).
struct SessionStats {
  int64_t committed = 0;
  int64_t aborts = 0;
  int64_t waits = 0;
};

/// One client session as a resumable state machine, so a worker thread
/// can multiplex many sessions over one batched submission loop instead
/// of parking a whole OS thread per client.
///
/// The protocol mirrors the paper's clients (Sec. 6): generate a script,
/// submit its ops in order, retry an op that waited, resubmit the whole
/// script with a fresh timestamp after an abort, and count a commit only
/// when the server accepts it. Begin and Commit run inline inside
/// NextOp — Commit blocks in the engine's group commit, which is exactly
/// the batching point — while Read/Write ops are handed out one at a time
/// for the worker to execute (batched through ShardedEngine::ExecuteBatch
/// or per-op against any other engine).
///
/// Usage per round: if NextOp fills an OpRequest, execute it and feed the
/// verdict back through OnResult before asking again. One in-flight op
/// per session, which is what ExecuteBatch's one-op-per-txn contract
/// needs.
class SessionDriver {
 public:
  /// `server` and `spec` must outlive the driver. `stop` (optional) makes
  /// NextOp return false early, aborting any in-flight transaction.
  SessionDriver(Server* server, SiteId site, const WorkloadSpec* spec,
                uint64_t seed, int target_txns,
                std::atomic<bool>* stop = nullptr,
                bool record_latency = true);

  SessionDriver(const SessionDriver&) = delete;
  SessionDriver& operator=(const SessionDriver&) = delete;

  /// Advances the session to its next Read/Write op, running Begin and
  /// Commit inline as needed. Returns false when the session is finished
  /// (target reached or stop raised) — permanently, see finished().
  bool NextOp(OpRequest* out);

  /// Feeds back the engine's verdict for the op NextOp last returned.
  void OnResult(const OpResult& r);

  bool finished() const { return finished_; }
  SiteId site() const { return site_; }
  const SessionStats& stats() const { return stats_; }

 private:
  void AbortInFlight();

  Server* server_;
  const WorkloadSpec* spec_;
  const SiteId site_;
  const int target_txns_;
  std::atomic<bool>* stop_;
  const bool record_latency_;

  WorkloadGenerator generator_;
  TimestampGenerator ts_gen_;

  TxnScript script_;
  bool script_valid_ = false;
  TxnId txn_ = kInvalidTxnId;
  size_t op_index_ = 0;
  std::vector<Value> reads_;
  int64_t started_us_ = 0;

  int completed_ = 0;
  bool finished_ = false;
  SessionStats stats_;
};

/// Worker-pool configuration for RunSessionWorkers.
struct SessionPoolOptions {
  size_t sessions = 16;
  int txns_per_session = 100;
  /// Worker threads multiplexing the sessions (each session is pinned to
  /// one worker). Clamped to [1, sessions].
  size_t workers = 4;
  /// Mixed into every session's generator seed; same seed + same spec =
  /// same scripts, so stress runs are replayable.
  uint64_t seed = 1;
  /// Optional per-round pause standing in for the RPC round trip (the
  /// thread-per-client loop's 150us); 0 runs memory-speed.
  int op_delay_us = 0;
  /// Optional external interrupt (signal handler, test timeout).
  std::atomic<bool>* stop = nullptr;
  /// Record client.txn_latency_ms samples into the server registry.
  bool record_latency = true;
};

struct SessionPoolResult {
  SessionStats total;
  double elapsed_s = 0.0;
  /// Per-session counters, indexed by session (site = index + 1).
  std::vector<SessionStats> per_session;
};

/// Drives `sessions` concurrent client sessions to completion over a pool
/// of worker threads. Against a ShardedEngine every worker submits one op
/// per live session per round through ExecuteBatch (one shard-latch
/// acquisition per shard per round); against any other engine it falls
/// back to per-op Server calls, so the harness can compare engines on
/// identical schedules.
SessionPoolResult RunSessionWorkers(Server* server, const WorkloadSpec& spec,
                                    const SessionPoolOptions& options);

}  // namespace esr

#endif  // ESR_ENGINE_SHARDED_SESSION_H_
