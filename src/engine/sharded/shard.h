#ifndef ESR_ENGINE_SHARDED_SHARD_H_
#define ESR_ENGINE_SHARDED_SHARD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/timestamp.h"
#include "common/types.h"
#include "hierarchy/accumulator.h"
#include "obs/profile.h"
#include "storage/object_store.h"
#include "txn/data_manager.h"

namespace esr {

/// Multi-field per-shard statistics, mutated only under the shard latch so
/// a snapshot taken under the same latch is internally consistent (the
/// torn-read regression test scrapes these mid-group-commit). The fields
/// form a monotone chain every consistent snapshot satisfies:
///
///   applied_writes >= committed_writes >= committed_writers
///                  >= commit_batches
///
/// (every commit batch that touches the shard commits >= 1 writer, every
/// writer commits >= 1 write, and every committed write was first applied
/// as a shadow install).
struct ShardStats {
  int64_t ops = 0;             ///< Read/Write ops served under the latch.
  int64_t waits = 0;           ///< Ops answered kWait (strict ordering).
  int64_t applied_writes = 0;  ///< Shadow installs (ApplyWrite calls).
  int64_t committed_writes = 0;
  int64_t committed_writers = 0;  ///< Distinct txns with commits here.
  int64_t commit_batches = 0;  ///< Group-commit batches with writes here.
};

/// One committed write, in the order the shard committed it. With
/// record_commit_log on, the stress harness replays each shard's log and
/// asserts the TO invariant: per object, committed write timestamps are
/// strictly increasing — no committed write is ever observed out of
/// timestamp order.
struct CommitLogEntry {
  ObjectId object = kInvalidObjectId;  ///< Global id.
  TxnId txn = kInvalidTxnId;
  Timestamp ts;
};

/// One partition of the sharded engine: a private latch, a dense local
/// ObjectStore slice (arena-backed histories included), the data manager
/// measuring divergence against it, per-shard bound-check counters (the
/// shared BoundCheckStats is not internally synchronized, so each shard
/// owns one resolving into the same registry), and the multi-field stats
/// above. All mutable state is guarded by latch().
class Shard {
 public:
  Shard(size_t index, const ObjectStoreOptions& store_options,
        const DivergenceOptions& divergence, MetricRegistry* metrics,
        bool record_commit_log)
      : index_(index),
        latch_name_("engine.shard" + std::to_string(index) + ".latch"),
        latch_(latch_name_.c_str()),
        store_(store_options),
        data_(&store_, divergence),
        bound_stats_(metrics),
        record_commit_log_(record_commit_log) {}

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  size_t index() const { return index_; }
  ProfiledMutex& latch() { return latch_; }
  ObjectStore& store() { return store_; }
  const ObjectStore& store() const { return store_; }
  DataManager& data() { return data_; }
  BoundCheckStats& bound_stats() { return bound_stats_; }

  /// Live counters; callers must hold latch().
  ShardStats& stats() { return stats_; }

  /// Consistent snapshot (takes the latch).
  ShardStats SnapshotStats() {
    std::lock_guard<ProfiledMutex> lock(latch_);
    return stats_;
  }

  /// Appends to the commit log; callers must hold latch().
  void RecordCommit(ObjectId global_id, TxnId txn, Timestamp ts) {
    if (record_commit_log_) commit_log_.push_back({global_id, txn, ts});
  }

  /// Quiescent-only read (no concurrent committers).
  const std::vector<CommitLogEntry>& commit_log() const {
    return commit_log_;
  }

 private:
  const size_t index_;
  /// Backing storage for the latch's site name (ProfiledMutex keeps the
  /// pointer); declared before latch_ so it outlives every lock.
  const std::string latch_name_;
  ProfiledMutex latch_;
  ObjectStore store_;  // before data_: the manager borrows it
  DataManager data_;
  BoundCheckStats bound_stats_;
  ShardStats stats_;
  const bool record_commit_log_;
  std::vector<CommitLogEntry> commit_log_;
};

}  // namespace esr

#endif  // ESR_ENGINE_SHARDED_SHARD_H_
