#ifndef ESR_ENGINE_SHARDED_SHARDED_ACCUMULATOR_H_
#define ESR_ENGINE_SHARDED_SHARDED_ACCUMULATOR_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/metrics.h"
#include "common/types.h"
#include "hierarchy/accumulator.h"
#include "hierarchy/bound_spec.h"
#include "hierarchy/group_schema.h"

namespace esr {

/// Engine-wide hierarchical inconsistency budget for the sharded engine:
/// the concurrent counterpart of InconsistencyAccumulator, shared by every
/// in-flight transaction instead of owned by one.
///
/// Enforcement is a lock-free bottom-up walk: each hierarchy node holds
/// one cache-line-aligned atomic total, and a charge is admitted at a node
/// only by a compare-exchange that verifies `total + charge <= limit`
/// *before* publishing — so no reader, at any instant, can observe a node
/// above its limit, even transiently (the property the spin-reader audit
/// test asserts). A reject at node k rolls back the already-published
/// charges on the nodes below k, exactly mirroring the per-transaction
/// accumulator's all-or-nothing bottom-up protocol (Sec. 5.3.1) — with the
/// one concurrency-induced difference that the rollback window of a losing
/// walk can transiently *reserve* budget at lower nodes and thereby reject
/// a concurrent walk that a serial schedule would have admitted. That is
/// the safe direction: the bound itself is never exceeded.
///
/// Because each node is an independent atomic, charges against disjoint
/// subtrees never serialize on a lock: per-shard operation threads fold
/// their partial charges straight into the per-node totals with one CAS
/// per path node. Per-shard charge counters (relaxed, telemetry only) let
/// gauge export show which shards are paying into which budget.
///
/// Memory ordering: successful charges publish with release and the
/// audit/telemetry readers load with acquire, so a reader that sees a
/// charge also sees everything the charging thread did before it.
///
/// The node array is sized from the schema at construction and never
/// grows, so the schema must be fully built before the accumulator is
/// created (ShardedEngine::SetSharedBounds recreates it for exactly this
/// reason). Charges use plain double adds; callers that need exact
/// charge/uncharge cancellation (the race-audit test) should charge
/// integer-valued amounts, which are exact in binary floating point.
class ShardedAccumulator {
 public:
  /// `schema` must outlive the accumulator and must not gain groups
  /// afterwards. A `bounds` with no finite limit disables enforcement
  /// entirely (TryCharge admits without touching memory).
  ShardedAccumulator(const GroupSchema* schema, BoundSpec bounds,
                     ChargeDirection direction, size_t num_shards);

  ShardedAccumulator(const ShardedAccumulator&) = delete;
  ShardedAccumulator& operator=(const ShardedAccumulator&) = delete;

  /// False when no node has a finite limit: every TryCharge is a no-op
  /// admit and teardown skips the uncharge loop.
  bool enforced() const { return enforced_; }

  /// Bounded add of `d * weight(n)` along path(object) -> root; admitted
  /// only if every node admits, otherwise nothing remains charged.
  /// `shard` attributes the charge for telemetry. d <= 0 always admits.
  ChargeResult TryCharge(ObjectId object, Inconsistency d, size_t shard);

  /// Reverses one successful TryCharge of `d` on `object`.
  void UnchargePath(ObjectId object, Inconsistency d);

  /// Releases everything a finished transaction had charged: subtracts
  /// the per-node accumulations of its (identically-weighted) private
  /// accumulator. The engine charges both accumulators with the same
  /// increments, so this is an exact inverse.
  void UnchargeAccumulated(const InconsistencyAccumulator& txn_acc);

  /// Current total at one node (acquire load; safe concurrently with
  /// charges, never observes a value above the node's limit).
  Inconsistency accumulated(GroupId group) const;

  Inconsistency total() const { return accumulated(kRootGroup); }

  /// Telemetry: charges attributed to one shard (relaxed).
  int64_t ShardCharges(size_t shard) const;

  /// Telemetry: per-shard partials folded into one global charge count.
  int64_t FoldedCharges() const;

  /// Publishes `engine.shared_eps.<dir>.node<g>` gauges (current in-flight
  /// totals) plus per-shard folded charge counts. No-op when unenforced.
  void ExportGauges(MetricRegistry* metrics) const;

  const BoundSpec& bounds() const { return bounds_; }
  ChargeDirection direction() const { return direction_; }
  size_t num_shards() const { return partials_.size(); }

 private:
  /// One hierarchy node's in-flight total, alone on its cache line so
  /// charges against unrelated groups never false-share.
  struct alignas(64) Node {
    std::atomic<uint64_t> bits{0};  // double bit pattern; 0 == +0.0
  };
  struct alignas(64) ShardPartial {
    std::atomic<int64_t> charges{0};
  };

  static uint64_t Bits(double v) {
    uint64_t b;
    std::memcpy(&b, &v, sizeof(b));
    return b;
  }
  static double FromBits(uint64_t b) {
    double v;
    std::memcpy(&v, &b, sizeof(v));
    return v;
  }

  /// CAS loop: publish total+d only if it stays <= limit.
  static bool BoundedAdd(Node& node, double d, double limit);
  /// CAS subtract (release); floors at zero against double drift.
  static void Sub(Node& node, double d);

  const GroupSchema* schema_;
  BoundSpec bounds_;
  ChargeDirection direction_;
  bool enforced_;
  std::vector<Node> nodes_;
  std::vector<ShardPartial> partials_;
};

}  // namespace esr

#endif  // ESR_ENGINE_SHARDED_SHARDED_ACCUMULATOR_H_
