#ifndef ESR_TWOPL_LOCK_TABLE_H_
#define ESR_TWOPL_LOCK_TABLE_H_

#include <vector>

#include "common/flat_map.h"
#include "common/timestamp.h"
#include "common/types.h"
#include "obs/profile.h"

namespace esr {

/// Outcome of a lock request under wait-die deadlock prevention: granted,
/// wait (requester is older than every conflicting holder — safe, since
/// all wait-for edges then point old -> young and cannot form a cycle),
/// or die (requester is younger than some conflicting holder; it must
/// abort and restart).
enum class LockOutcome : uint8_t {
  kGranted = 0,
  kWait = 1,
  kDie = 2,
};

/// A strict two-phase lock table with shared/exclusive modes and wait-die
/// conflict resolution. Waiting is client-driven (the engine returns
/// kWait and the client retries), so the table keeps no queues — only
/// current holders. Upgrades (S -> X by the sole shared holder) are
/// supported, as update ETs may read an object before writing it.
class LockTable {
 public:
  struct Request {
    TxnId txn = kInvalidTxnId;
    Timestamp ts;
  };

  struct Grant {
    LockOutcome outcome = LockOutcome::kGranted;
    /// A conflicting holder (the one to wait for / the oldest blocker)
    /// when the outcome is not kGranted.
    TxnId conflict = kInvalidTxnId;
  };

  /// Requests a shared lock; idempotent for a holder.
  Grant AcquireShared(ObjectId object, const Request& request);

  /// Requests an exclusive lock (or an upgrade if `request.txn` already
  /// holds the only shared lock).
  Grant AcquireExclusive(ObjectId object, const Request& request);

  /// Releases every lock held by `txn` (strict 2PL: locks are held until
  /// commit/abort).
  void ReleaseAll(TxnId txn);

  bool HoldsShared(ObjectId object, TxnId txn) const;
  bool HoldsExclusive(ObjectId object, TxnId txn) const;

  /// Number of objects with at least one lock held (for tests).
  size_t num_locked_objects() const;

  /// Wires a wall-clock contention site: every Acquire* counts as an
  /// acquisition and every kWait/kDie grant records a logical conflict
  /// blamed on the conflicting holder. Waiting is client-driven here, so
  /// conflicts are untimed — the timed wait is charged by the client's
  /// retry backoff (ScopedSiteWait in threaded_server). Null disables.
  void set_contention_site(ContentionSite* site) { site_ = site; }

  /// Pre-sizes the lock and reverse-holder maps for an expected number of
  /// concurrently locked objects / concurrent transactions, so steady
  /// state never rehashes. Cheap to over-estimate.
  void Reserve(size_t expected_locked_objects, size_t expected_txns) {
    entries_.Reserve(expected_locked_objects);
    held_.Reserve(expected_txns);
  }

 private:
  struct Holder {
    TxnId txn;
    Timestamp ts;
  };
  struct Entry {
    std::vector<Holder> shared;
    Holder exclusive{kInvalidTxnId, Timestamp()};

    bool unlocked() const {
      return shared.empty() && exclusive.txn == kInvalidTxnId;
    }
  };

  /// Wait-die: older (smaller ts) requesters wait, younger die.
  static Grant Resolve(const Request& request, const Holder& conflicting);

  /// Records `grant` against site_ when profiling is live.
  void RecordGrant(const Grant& grant) const;

  FlatMap<ObjectId, Entry> entries_;
  // Reverse index so ReleaseAll is O(locks held).
  FlatMap<TxnId, std::vector<ObjectId>> held_;
  ContentionSite* site_ = nullptr;
};

}  // namespace esr

#endif  // ESR_TWOPL_LOCK_TABLE_H_
