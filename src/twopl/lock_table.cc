#include "twopl/lock_table.h"

#include <algorithm>

#include "common/logging.h"

namespace esr {

LockTable::Grant LockTable::Resolve(const Request& request,
                                    const Holder& conflicting) {
  Grant grant;
  grant.conflict = conflicting.txn;
  grant.outcome = request.ts < conflicting.ts ? LockOutcome::kWait
                                              : LockOutcome::kDie;
  return grant;
}

void LockTable::RecordGrant(const Grant& grant) const {
  if (site_ == nullptr || !GlobalProfilerEnabled()) return;
  site_->RecordAcquisition();
  if (grant.outcome != LockOutcome::kGranted) {
    site_->RecordConflict(grant.conflict);
  }
}

LockTable::Grant LockTable::AcquireShared(ObjectId object,
                                          const Request& request) {
  Entry& entry = entries_[object];
  if (entry.exclusive.txn != kInvalidTxnId) {
    if (entry.exclusive.txn == request.txn) return Grant{};  // own X covers S
    const Grant grant = Resolve(request, entry.exclusive);
    RecordGrant(grant);
    return grant;
  }
  for (const Holder& holder : entry.shared) {
    if (holder.txn == request.txn) return Grant{};  // already held
  }
  entry.shared.push_back(Holder{request.txn, request.ts});
  held_[request.txn].push_back(object);
  RecordGrant(Grant{});
  return Grant{};
}

LockTable::Grant LockTable::AcquireExclusive(ObjectId object,
                                             const Request& request) {
  Entry& entry = entries_[object];
  if (entry.exclusive.txn != kInvalidTxnId) {
    if (entry.exclusive.txn == request.txn) return Grant{};  // re-entrant
    const Grant grant = Resolve(request, entry.exclusive);
    RecordGrant(grant);
    return grant;
  }
  // Conflicts with shared holders other than the requester itself.
  const Holder* oldest_conflict = nullptr;
  bool requester_holds_shared = false;
  for (const Holder& holder : entry.shared) {
    if (holder.txn == request.txn) {
      requester_holds_shared = true;
      continue;
    }
    if (oldest_conflict == nullptr || holder.ts < oldest_conflict->ts) {
      oldest_conflict = &holder;
    }
  }
  if (oldest_conflict != nullptr) {
    // Wait-die against the oldest conflicting shared holder: if the
    // requester is younger than ANY conflicting holder it must die, and
    // the oldest is the strictest test.
    const Grant grant = Resolve(request, *oldest_conflict);
    RecordGrant(grant);
    return grant;
  }
  // Grant (possibly upgrading the requester's own shared lock).
  if (requester_holds_shared) {
    entry.shared.erase(
        std::remove_if(entry.shared.begin(), entry.shared.end(),
                       [&](const Holder& h) { return h.txn == request.txn; }),
        entry.shared.end());
  } else {
    held_[request.txn].push_back(object);
  }
  entry.exclusive = Holder{request.txn, request.ts};
  RecordGrant(Grant{});
  return Grant{};
}

void LockTable::ReleaseAll(TxnId txn) {
  std::vector<ObjectId>* held = held_.Find(txn);
  if (held == nullptr) return;
  // Move the held set out before erasing entries: FlatMap erase shifts
  // neighboring slots, so no reference into either map may outlive it.
  std::vector<ObjectId> objects = std::move(*held);
  held_.Erase(txn);
  for (const ObjectId object : objects) {
    Entry* entry = entries_.Find(object);
    if (entry == nullptr) continue;
    if (entry->exclusive.txn == txn) {
      entry->exclusive = Holder{kInvalidTxnId, Timestamp()};
    }
    entry->shared.erase(
        std::remove_if(entry->shared.begin(), entry->shared.end(),
                       [txn](const Holder& h) { return h.txn == txn; }),
        entry->shared.end());
    if (entry->unlocked()) entries_.Erase(object);
  }
}

bool LockTable::HoldsShared(ObjectId object, TxnId txn) const {
  const Entry* entry = entries_.Find(object);
  if (entry == nullptr) return false;
  return std::any_of(entry->shared.begin(), entry->shared.end(),
                     [txn](const Holder& h) { return h.txn == txn; });
}

bool LockTable::HoldsExclusive(ObjectId object, TxnId txn) const {
  const Entry* entry = entries_.Find(object);
  return entry != nullptr && entry->exclusive.txn == txn;
}

size_t LockTable::num_locked_objects() const { return entries_.size(); }

}  // namespace esr
