#ifndef ESR_TWOPL_TWOPL_MANAGER_H_
#define ESR_TWOPL_TWOPL_MANAGER_H_

#include <algorithm>
#include <mutex>

#include "common/flat_map.h"
#include "common/metrics.h"
#include "hierarchy/accumulator.h"
#include "obs/profile.h"
#include "hierarchy/group_schema.h"
#include "storage/object_store.h"
#include "twopl/lock_table.h"
#include "txn/data_manager.h"
#include "txn/engine.h"

namespace esr {

/// Strict two-phase locking engine with wait-die deadlock prevention —
/// the concurrency-control alternative the paper's prototype avoided
/// because of "the problem of deadlock detection and recovery" (Sec. 4)
/// — extended with divergence control in the style of Wu et al. [21]:
///
///  * SR transactions (and all update ETs' reads) take S/X locks, held
///    until commit/abort; conflicts resolve by wait-die on the begin
///    timestamps, so the wait graph is acyclic by construction.
///  * ESR query ETs (TIL > 0) read WITHOUT locks: the read sees the
///    present (possibly dirty) value and is admitted iff its measured
///    inconsistency d = |present - proper| passes the object, group, and
///    transaction level checks — the same bottom-up control as the TO
///    engine, so the two protocols are comparable like-for-like.
///  * An update ET writing an object that registered ESR query readers
///    exports inconsistency to them, bounded by OEL and its TEL.
///
/// Shares the storage substrate (shadow values, bounded write history,
/// reader registration) with the TO engine; timestamps order wait-die
/// priorities and anchor the proper-value lookup.
class TwoPLManager final : public TransactionEngine {
 public:
  TwoPLManager(ObjectStore* store, const GroupSchema* schema,
               MetricRegistry* metrics,
               const DivergenceOptions& divergence = {});

  TwoPLManager(const TwoPLManager&) = delete;
  TwoPLManager& operator=(const TwoPLManager&) = delete;

  TxnId Begin(TxnType type, Timestamp ts, const BoundSpec& bounds) override;
  OpResult Read(TxnId txn, ObjectId object) override;
  OpResult Write(TxnId txn, ObjectId object, Value value) override;
  Status Commit(TxnId txn) override;
  Status Abort(TxnId txn) override;
  bool IsActive(TxnId txn) const override;
  const Transaction* Find(TxnId txn) const override;
  size_t num_active() const override;
  EngineKind kind() const override { return EngineKind::kTwoPhaseLocking; }

  void SetHeadroomTracker(NodeHeadroomTracker* tracker) override {
    std::lock_guard<ProfiledMutex> lock(mu_);
    headroom_tracker_ = tracker;
  }

  /// Pre-sizes the transaction registry and lock table for the expected
  /// MPL and access-set size (no rehash on the operation path).
  void ReserveForLoad(const LoadHints& hints) override {
    std::lock_guard<ProfiledMutex> lock(mu_);
    if (hints.concurrent_txns > 0) {
      transactions_.Reserve(2 * hints.concurrent_txns);
      locks_.Reserve(2 * hints.concurrent_txns *
                         std::max<size_t>(1, hints.objects_per_txn),
                     2 * hints.concurrent_txns);
    }
    access_hint_ = hints.objects_per_txn;
  }

  LockTable& lock_table() { return locks_; }

 private:
  Transaction& GetActive(TxnId txn);
  OpResult AbortOp(Transaction& txn, AbortReason reason);
  void Teardown(Transaction& txn, TxnState final_state, AbortReason reason);
  OpResult DoRead(Transaction& txn, ObjectId object);
  OpResult DoWrite(Transaction& txn, ObjectId object, Value value);
  /// Maps a lock grant to the OpResult control flow; true if granted.
  bool HandleGrant(Transaction& txn, ObjectId object,
                   const LockTable::Grant& grant, OpResult* result);

  /// Engine latch, doubling as a wall-clock contention site (waiters
  /// blame the transaction the critical section currently serves).
  mutable ProfiledMutex mu_{"twopl.engine_mu"};
  const GroupSchema* schema_;
  MetricRegistry* metrics_;
  DataManager data_manager_;
  LockTable locks_;
  TxnId next_txn_id_ = 1;
  /// Headroom telemetry sink for new transactions' accumulators (see
  /// NodeHeadroomTracker); not owned, may be null.
  NodeHeadroomTracker* headroom_tracker_ = nullptr;
  /// Expected access-set size for new transactions (0 = no pre-sizing).
  size_t access_hint_ = 0;
  FlatMap<TxnId, Transaction> transactions_;
  /// Per-level bound-check outcome counters (Sec. 5 observability).
  BoundCheckStats bound_stats_;
  /// Hot-path counters resolved once at construction so per-operation
  /// accounting is an atomic increment, not a map lookup.
  EngineCounters counters_;
};

}  // namespace esr

#endif  // ESR_TWOPL_TWOPL_MANAGER_H_
