#include "twopl/twopl_manager.h"

#include <string>

#include "common/logging.h"
#include "obs/trace.h"

namespace esr {
namespace {

AbortReason BoundAbortReason(GroupId violated_group) {
  return violated_group == kRootGroup ? AbortReason::kTransactionBound
                                      : AbortReason::kGroupBound;
}

}  // namespace

TwoPLManager::TwoPLManager(ObjectStore* store, const GroupSchema* schema,
                           MetricRegistry* metrics,
                           const DivergenceOptions& divergence)
    : schema_(schema),
      metrics_(metrics),
      data_manager_(store, divergence),
      bound_stats_(metrics),
      counters_(metrics) {
  ESR_CHECK(schema_ != nullptr);
  ESR_CHECK(metrics_ != nullptr);
  // Logical S/X conflicts surface in the profiler's blocker tables even
  // though the table itself never blocks (client-driven retries).
  locks_.set_contention_site(GlobalProfiler().site("twopl.lock_table"));
}

TxnId TwoPLManager::Begin(TxnType type, Timestamp ts,
                          const BoundSpec& bounds) {
  ScopedPhaseTimer phase(ProfilePhase::kValidate);
  std::lock_guard<ProfiledMutex> lock(mu_);
  const TxnId id = next_txn_id_++;
  auto [t, inserted] = transactions_.TryEmplace(
      id, Transaction(id, type, ts, schema_, bounds));
  if (access_hint_ > 0) t->ReserveAccessSets(access_hint_);
  t->AttachHeadroomTracker(headroom_tracker_);
  t->set_trace_span(BeginSpan(SpanKind::kTxn, id, ts.site));
  counters_.BeginFor(type)->Increment();
  ESR_TRACE_EVENT(
      WithSpan(TraceEvent::BeginTxn(id, type, ts.site), t->trace_span()));
  return id;
}

OpResult TwoPLManager::Read(TxnId txn, ObjectId object) {
  ScopedPhaseTimer phase(ProfilePhase::kValidate);
  std::lock_guard<ProfiledMutex> lock(mu_);
  mu_.set_holder(txn);
  Transaction& t = GetActive(txn);
  TraceSpan op_span(SpanKind::kOp, txn, t.ts().site, object, t.trace_span());
  return DoRead(t, object);
}

OpResult TwoPLManager::Write(TxnId txn, ObjectId object, Value value) {
  ScopedPhaseTimer phase(ProfilePhase::kValidate);
  std::lock_guard<ProfiledMutex> lock(mu_);
  mu_.set_holder(txn);
  Transaction& t = GetActive(txn);
  TraceSpan op_span(SpanKind::kOp, txn, t.ts().site, object, t.trace_span());
  return DoWrite(t, object, value);
}

bool TwoPLManager::HandleGrant(Transaction& txn,
                               [[maybe_unused]] ObjectId object,
                               const LockTable::Grant& grant,
                               OpResult* result) {
  switch (grant.outcome) {
    case LockOutcome::kGranted:
      return true;
    case LockOutcome::kWait:
      counters_.op_wait->Increment();
      ESR_TRACE_EVENT(TraceEvent::WaitOn(txn.id(), txn.ts().site, object,
                                         grant.conflict));
      ESR_TRACE_EVENT(TraceEvent::Flow(TraceEventType::kFlowBegin,
                                       grant.conflict, txn.id(),
                                       txn.ts().site));
      *result = OpResult::Wait(grant.conflict);
      return false;
    case LockOutcome::kDie:
      *result = AbortOp(txn, AbortReason::kDeadlockVictim);
      return false;
  }
  return false;
}

OpResult TwoPLManager::DoRead(Transaction& txn, ObjectId object) {
  ObjectRecord& obj = data_manager_.store().Get(object);

  if (txn.is_query() && txn.esr_enabled()) {
    // Divergence-controlled lock-free read: see the present (possibly
    // dirty) value, admitted within the hierarchical bounds.
    auto measure_or = data_manager_.ImportInconsistency(obj, txn.ts());
    if (!measure_or.ok()) {
      return AbortOp(txn, AbortReason::kHistoryExhausted);
    }
    const DataManager::ImportMeasure measure = *measure_or;
    if (!data_manager_.WithinObjectImportLimit(obj, measure.d)) {
      return AbortOp(txn, AbortReason::kObjectBound);
    }
    const ChargeResult charge = txn.accumulator().TryCharge(
        object, measure.d, &bound_stats_, txn.id(), txn.ts().site);
    if (!charge.admitted) {
      return AbortOp(txn, BoundAbortReason(charge.violated_group));
    }
    const Value present = obj.value();
    if (obj.RegisterQueryReader(txn.id(), txn.ts(), measure.proper)) {
      txn.NoteRegisteredRead(object);
    }
    txn.ObserveValue(object, present);
    txn.CountOp();
    counters_.op_read->Increment();
    ESR_TRACE_EVENT(TraceEvent::Op(TraceEventType::kRead, txn.id(),
                                   txn.ts().site, object));
    const bool relaxed =
        obj.has_uncommitted_write() || measure.d > 0.0;
    if (measure.d > 0.0) {
      txn.CountInconsistentOp();
      counters_.op_inconsistent_ok->Increment();
      ESR_TRACE_EVENT(TraceEvent::ImportCharge(txn.id(), txn.ts().site,
                                               object, measure.d));
    }
    return OpResult::Ok(present, measure.d, relaxed);
  }

  // Locked read (update ETs and SR queries).
  OpResult result;
  const LockTable::Grant grant = locks_.AcquireShared(
      object, LockTable::Request{txn.id(), txn.ts()});
  if (!HandleGrant(txn, object, grant, &result)) return result;

  const Value present = obj.value();
  txn.ObserveValue(object, present);
  txn.CountOp();
  counters_.op_read->Increment();
  ESR_TRACE_EVENT(TraceEvent::Op(TraceEventType::kRead, txn.id(),
                                 txn.ts().site, object));
  return OpResult::Ok(present, 0.0, /*was_relaxed=*/false);
}

OpResult TwoPLManager::DoWrite(Transaction& txn, ObjectId object,
                               Value value) {
  ESR_CHECK(txn.type() == TxnType::kUpdate)
      << "query ETs are read-only; Write from txn " << txn.id();
  ObjectRecord& obj = data_manager_.store().Get(object);

  OpResult result;
  const LockTable::Grant grant = locks_.AcquireExclusive(
      object, LockTable::Request{txn.id(), txn.ts()});
  if (!HandleGrant(txn, object, grant, &result)) return result;

  // Export control against lock-free ESR query readers (the X lock has
  // already excluded locked readers).
  const Inconsistency d =
      data_manager_.ExportInconsistency(obj, txn.View(), value);
  const bool relaxed = !obj.query_readers().empty();
  if (d > 0.0 || relaxed) {
    if (!data_manager_.WithinObjectExportLimit(obj, d)) {
      return AbortOp(txn, AbortReason::kObjectBound);
    }
    const ChargeResult charge = txn.accumulator().TryCharge(
        object, d, &bound_stats_, txn.id(), txn.ts().site);
    if (!charge.admitted) {
      return AbortOp(txn, BoundAbortReason(charge.violated_group));
    }
  }
  {
    ScopedPhaseTimer apply_phase(ProfilePhase::kApply);
    obj.ApplyWrite(txn.id(), txn.ts(), value);
  }
  txn.NotePendingWrite(object);
  txn.CountOp();
  counters_.op_write->Increment();
  ESR_TRACE_EVENT(TraceEvent::Op(TraceEventType::kWrite, txn.id(),
                                 txn.ts().site, object));
  if (d > 0.0) {
    txn.CountInconsistentOp();
    counters_.op_inconsistent_ok->Increment();
  }
  return OpResult::Ok(value, d, relaxed);
}

Status TwoPLManager::Commit(TxnId txn) {
  ScopedPhaseTimer phase(ProfilePhase::kCommit);
  std::lock_guard<ProfiledMutex> lock(mu_);
  mu_.set_holder(txn);
  Transaction* t = transactions_.Find(txn);
  if (t == nullptr) {
    return Status::FailedPrecondition("transaction " + std::to_string(txn) +
                                      " is not active");
  }
  TraceSpan commit_span(SpanKind::kCommit, txn, t->ts().site, 0,
                        t->trace_span());
  Teardown(*t, TxnState::kCommitted, AbortReason::kNone);
  return Status::OK();
}

Status TwoPLManager::Abort(TxnId txn) {
  ScopedPhaseTimer phase(ProfilePhase::kCommit);
  std::lock_guard<ProfiledMutex> lock(mu_);
  mu_.set_holder(txn);
  Transaction* t = transactions_.Find(txn);
  if (t == nullptr) {
    return Status::FailedPrecondition("transaction " + std::to_string(txn) +
                                      " is not active");
  }
  TraceSpan commit_span(SpanKind::kCommit, txn, t->ts().site, 0,
                        t->trace_span());
  Teardown(*t, TxnState::kAborted, AbortReason::kUserRequested);
  return Status::OK();
}

bool TwoPLManager::IsActive(TxnId txn) const {
  std::lock_guard<ProfiledMutex> lock(mu_);
  return transactions_.Contains(txn);
}

const Transaction* TwoPLManager::Find(TxnId txn) const {
  std::lock_guard<ProfiledMutex> lock(mu_);
  return transactions_.Find(txn);
}

size_t TwoPLManager::num_active() const {
  std::lock_guard<ProfiledMutex> lock(mu_);
  return transactions_.size();
}

Transaction& TwoPLManager::GetActive(TxnId txn) {
  Transaction* t = transactions_.Find(txn);
  ESR_CHECK(t != nullptr)
      << "operation on unknown/finished transaction " << txn;
  return *t;
}

OpResult TwoPLManager::AbortOp(Transaction& txn, AbortReason reason) {
  Teardown(txn, TxnState::kAborted, reason);
  return OpResult::Abort(reason);
}

void TwoPLManager::Teardown(Transaction& txn, TxnState final_state,
                            AbortReason reason) {
  ObjectStore& store = data_manager_.store();
  if (final_state == TxnState::kCommitted) {
    for (const ObjectId object : txn.pending_writes()) {
      store.Get(object).CommitWrite(txn.id());
    }
    counters_.CommitFor(txn.type())->Increment();
    ESR_TRACE_EVENT(TraceEvent::CommitTxn(txn.id(), txn.ts().site));
  } else {
    for (const ObjectId object : txn.pending_writes()) {
      store.Get(object).AbortWrite(txn.id());
    }
    counters_.txn_abort->Increment();
    counters_.AbortFor(reason)->Increment();
    ESR_TRACE_EVENT(TraceEvent::AbortTxn(txn.id(), txn.ts().site,
                                         static_cast<uint8_t>(reason)));
  }
  for (const ObjectId object : txn.registered_reads()) {
    store.Get(object).UnregisterQueryReader(txn.id());
  }
  // Writers (lock holders) resolve the conflict flows that targeted them;
  // then the lifetime span closes.
  if (!txn.pending_writes().empty()) {
    ESR_TRACE_EVENT(TraceEvent::Flow(TraceEventType::kFlowEnd, txn.id(),
                                     txn.id(), txn.ts().site));
  }
  EndSpan(SpanKind::kTxn, txn.trace_span(), txn.id(), txn.ts().site);
  locks_.ReleaseAll(txn.id());
  // Last touch of `txn`: backward-shift erase moves neighbors and leaves
  // the reference dangling.
  transactions_.Erase(txn.id());
}

}  // namespace esr
